"""KernelLibrary: (program, N, Nel, variant) -> compiled callable.

This is the dispatch tier that ``repro.kernels`` talks to.  The
library owns variant resolution policy:

* ``"generated"`` — the statically chosen default schedule
  (:data:`DEFAULT_SCHEDULE`, the fully fused GEMM form — the same
  algorithm as the hand-written ``fused`` variant);
* ``"auto"`` — per-host autotuned: the first request for a given
  ``(program, n, nel)`` runs :func:`repro.kir.autotune.tune_program`
  (served from the persistent cache when warm) and pins the winner;
* a schedule name (``gemm``, ``plane``, ``einsum``, ``tbatch``,
  ``gemm_rev``) — that exact schedule, mostly for tests and benches.

Resolved callables are memoized, so steady-state dispatch is one dict
lookup per call.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .autotune import tune_program
from .ir import build_program
from .lower import DEFAULT_LOWERING, LoweredKernel, lowered_kernel
from .passes import SCHEDULES, applicable_schedules

#: Schedule used by the non-tuned ``generated`` variant.
DEFAULT_SCHEDULE = "gemm"

#: Variants the library accepts (beyond literal schedule names).
LIBRARY_VARIANTS = ("generated", "auto")


class KernelLibrary:
    """Resolve kernel requests to compiled generated callables."""

    def __init__(
        self,
        lowering: str = DEFAULT_LOWERING,
        cache_path: Optional[str] = None,
        use_cache: bool = True,
    ) -> None:
        self.lowering = lowering
        self.cache_path = cache_path
        self.use_cache = use_cache
        self._resolved: Dict[
            Tuple[str, int, Optional[int], int, str], LoweredKernel
        ] = {}
        self._tuned: Dict[Tuple[str, int, Optional[int], int], str] = {}

    def resolve(
        self,
        program: str,
        n: int,
        nel: int,
        variant: str = "generated",
        m: Optional[int] = None,
    ) -> LoweredKernel:
        """Return the compiled kernel for one concrete problem.

        ``variant`` is ``"generated"``, ``"auto"``, or a schedule
        name.  ``nel`` only influences ``"auto"`` (the tuning key);
        the other variants compile one kernel per ``(program, n)``.
        """
        sched = self._schedule_for(program, n, nel, variant, m)
        key = (program, n, m, 0 if variant != "auto" else nel, sched)
        hit = self._resolved.get(key)
        if hit is None:
            prog = build_program(program, n, m=m)
            hit = lowered_kernel(prog, sched, self.lowering)
            self._resolved[key] = hit
        return hit

    def _schedule_for(
        self,
        program: str,
        n: int,
        nel: int,
        variant: str,
        m: Optional[int],
    ) -> str:
        if variant == "generated":
            return DEFAULT_SCHEDULE
        if variant in SCHEDULES:
            return variant
        if variant != "auto":
            raise ValueError(
                f"unknown kernel variant {variant!r}; expected "
                f"{LIBRARY_VARIANTS + tuple(SCHEDULES)}"
            )
        tkey = (program, n, m, nel)
        sched = self._tuned.get(tkey)
        if sched is None:
            prog = build_program(program, n, m=m)
            result = tune_program(
                prog,
                nel,
                lowering=self.lowering,
                cache_path=self.cache_path,
                use_cache=self.use_cache,
            )
            sched = result.schedule
            self._tuned[tkey] = sched
        return sched

    def schedules(self, program: str, n: int, m: Optional[int] = None):
        """Applicable schedule names for a program (introspection)."""
        return applicable_schedules(build_program(program, n, m=m))

    def clear(self) -> None:
        """Drop memoized resolutions (tests)."""
        self._resolved.clear()
        self._tuned.clear()


_DEFAULT: Optional[KernelLibrary] = None


def default_library() -> KernelLibrary:
    """Process-wide library used by the ``repro.kernels`` dispatchers."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = KernelLibrary()
    return _DEFAULT


def reset_default_library() -> None:
    """Forget the process-wide library (tests swap cache paths)."""
    global _DEFAULT
    _DEFAULT = None
