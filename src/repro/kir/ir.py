"""The tensor-contraction IR: tensors, ops, and programs.

CMT-bone's hot kernels are all instances of one algebraic shape — a
small stationary operator matrix contracted against one axis of a big
``(nel, N, N, N)`` element batch (the paper's "derivative matrix of
size (N, N) operates over a 3D data (N, N, N, Nel)").  Instead of
hand-maintaining one numpy routine per (kernel, loop-schedule) pair,
this package describes each kernel *once* as a tiny program over four
ops and derives the executable variants:

* :class:`Contract` — ``out = sum over sum_axes of a * b`` (einsum
  semantics over named axes; the workhorse),
* :class:`Add` / :class:`Scale` — elementwise combination,
* :class:`Permute` — axis transposition (data movement only).

A :class:`Program` is a straight-line sequence of ops in SSA-ish form:
every op writes a tensor name exactly once, inputs are never written.
Axis names are single letters; the element axis ``e`` has dynamic size
(``None``), every other axis is specialized to a concrete integer at
program-build time (that is what lets the lowering emit constant
shapes and fully-unrolled loops).

The registry at the bottom holds the five flagship programs —
``dudr``/``duds``/``dudt`` (the Fig. 5/6 derivative kernels), ``grad``
(all three directions), and ``interp_fine``/``interp_coarse`` (the
Section-V dealiasing transfer pair).

Cost is a *property of the IR*, not of any particular lowering:
:func:`program_flops` / :func:`program_mem_bytes` walk the contraction
list, so every generated variant is priced automatically (see
:mod:`repro.kernels.counters`, which now cross-checks its closed-form
formulas against these).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple, Union

#: The dynamic (element-batch) axis name; its extent is resolved at
#: call time from the input array, never baked into generated source.
BATCH_AXIS = "e"


@dataclass(frozen=True)
class Tensor:
    """A named tensor with named axes and (mostly) concrete sizes.

    ``dims[i]`` is ``None`` exactly when ``axes[i]`` is the dynamic
    :data:`BATCH_AXIS`; all other extents are concrete ints.
    """

    name: str
    axes: Tuple[str, ...]
    dims: Tuple[Optional[int], ...]

    def __post_init__(self) -> None:
        if len(self.axes) != len(self.dims):
            raise ValueError(
                f"tensor {self.name!r}: {len(self.axes)} axes but "
                f"{len(self.dims)} dims"
            )
        if len(set(self.axes)) != len(self.axes):
            raise ValueError(
                f"tensor {self.name!r}: repeated axis in {self.axes}"
            )
        for ax, d in zip(self.axes, self.dims):
            if (d is None) != (ax == BATCH_AXIS):
                raise ValueError(
                    f"tensor {self.name!r}: axis {ax!r} has extent {d!r} "
                    f"(only the {BATCH_AXIS!r} axis may be dynamic)"
                )

    @property
    def ndim(self) -> int:
        return len(self.axes)

    def size(self, nel: int) -> int:
        """Element count with the batch axis bound to ``nel``."""
        total = 1
        for d in self.dims:
            total *= nel if d is None else d
        return total

    def extent(self, axis: str, nel: int = 1) -> int:
        d = self.dims[self.axes.index(axis)]
        return nel if d is None else d

    def describe(self) -> str:
        dims = ",".join(
            "nel" if d is None else str(d) for d in self.dims
        )
        return f"{self.name}[{','.join(self.axes)}]({dims})"


def tensor(name: str, spec: str, **sizes: int) -> Tensor:
    """Shorthand constructor: ``tensor("u", "emjk", m=5, j=5, k=5)``.

    Every non-batch axis letter in ``spec`` must get a size binding.
    """
    dims: List[Optional[int]] = []
    for ax in spec:
        if ax == BATCH_AXIS:
            dims.append(None)
        else:
            try:
                dims.append(int(sizes[ax]))
            except KeyError:
                raise ValueError(
                    f"axis {ax!r} of {name!r} has no size binding"
                ) from None
    return Tensor(name=name, axes=tuple(spec), dims=tuple(dims))


# ---------------------------------------------------------------------
# ops
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class Contract:
    """``out[out_axes] = sum_{sum_axes} a[a_axes] * b[b_axes]``.

    Einsum semantics: axes shared between ``a`` and ``b`` that appear
    in ``sum_axes`` are contracted; all others must appear in ``out``.
    """

    out: Tensor
    a: Tensor
    b: Tensor
    sum_axes: Tuple[str, ...]

    def __post_init__(self) -> None:
        in_axes = set(self.a.axes) | set(self.b.axes)
        for ax in self.sum_axes:
            if ax not in self.a.axes or ax not in self.b.axes:
                raise ValueError(
                    f"contract -> {self.out.name}: summed axis {ax!r} "
                    "must appear in both operands"
                )
            if ax in self.out.axes:
                raise ValueError(
                    f"contract -> {self.out.name}: summed axis {ax!r} "
                    "also appears in the output"
                )
        for ax in self.out.axes:
            if ax not in in_axes:
                raise ValueError(
                    f"contract -> {self.out.name}: output axis {ax!r} "
                    "appears in neither operand"
                )

    @property
    def spec(self) -> str:
        """The einsum subscript string of this contraction."""
        return (
            f"{''.join(self.a.axes)},{''.join(self.b.axes)}"
            f"->{''.join(self.out.axes)}"
        )

    def flops(self, nel: int) -> float:
        k = 1
        for ax in self.sum_axes:
            k *= self.a.extent(ax, nel)
        return 2.0 * self.out.size(nel) * k

    def reads(self) -> Tuple[Tensor, ...]:
        return (self.a, self.b)


@dataclass(frozen=True)
class Add:
    """``out = a + b`` elementwise (identical axes)."""

    out: Tensor
    a: Tensor
    b: Tensor

    def __post_init__(self) -> None:
        if not (self.a.axes == self.b.axes == self.out.axes):
            raise ValueError(
                f"add -> {self.out.name}: axis mismatch "
                f"{self.a.axes} + {self.b.axes} -> {self.out.axes}"
            )

    def flops(self, nel: int) -> float:
        return float(self.out.size(nel))

    def reads(self) -> Tuple[Tensor, ...]:
        return (self.a, self.b)


@dataclass(frozen=True)
class Scale:
    """``out = alpha * a`` elementwise."""

    out: Tensor
    a: Tensor
    alpha: float

    def __post_init__(self) -> None:
        if self.a.axes != self.out.axes:
            raise ValueError(
                f"scale -> {self.out.name}: axis mismatch "
                f"{self.a.axes} -> {self.out.axes}"
            )

    def flops(self, nel: int) -> float:
        return float(self.out.size(nel))

    def reads(self) -> Tuple[Tensor, ...]:
        return (self.a,)


@dataclass(frozen=True)
class Permute:
    """``out = a`` with axes reordered by name (pure data movement)."""

    out: Tensor
    a: Tensor

    def __post_init__(self) -> None:
        if sorted(self.a.axes) != sorted(self.out.axes):
            raise ValueError(
                f"permute -> {self.out.name}: {self.a.axes} is not a "
                f"permutation of {self.out.axes}"
            )

    @property
    def perm(self) -> Tuple[int, ...]:
        """Positions into ``a.axes`` producing ``out.axes`` order."""
        return tuple(self.a.axes.index(ax) for ax in self.out.axes)

    def flops(self, nel: int) -> float:
        return 0.0

    def reads(self) -> Tuple[Tensor, ...]:
        return (self.a,)


Op = Union[Contract, Add, Scale, Permute]


# ---------------------------------------------------------------------
# programs
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class Program:
    """A straight-line contraction program.

    ``inputs`` fixes the positional calling convention of every
    lowering (``fn(*inputs, out=None)``); ``outputs`` name the result
    tensors in return order.  ``body`` ops execute in sequence; every
    non-input tensor is written exactly once before it is read.
    """

    name: str
    inputs: Tuple[Tensor, ...]
    outputs: Tuple[Tensor, ...]
    body: Tuple[Op, ...]
    #: Parameters the program was specialized with (for cache keys and
    #: reports), e.g. ``{"n": 10}`` or ``{"n": 10, "m": 15}``.
    params: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Axis *names* are op-local einsum subscripts; storage identity
        # is (name, dims).  The same input may be read under different
        # subscript labellings (grad reads u as e,a,b,c three times
        # with a different axis contracted each time) as long as the
        # shape agrees.
        defined: Dict[str, Tuple[Optional[int], ...]] = {
            t.name: t.dims for t in self.inputs
        }
        if len(defined) != len(self.inputs):
            raise ValueError(f"{self.name}: duplicate input name")
        for op in self.body:
            for t in op.reads():
                seen = defined.get(t.name)
                if seen is None:
                    raise ValueError(
                        f"{self.name}: op reads undefined tensor "
                        f"{t.name!r}"
                    )
                if seen != t.dims:
                    raise ValueError(
                        f"{self.name}: tensor {t.name!r} read with "
                        f"shape {t.dims}, defined with {seen}"
                    )
            if op.out.name in defined:
                raise ValueError(
                    f"{self.name}: tensor {op.out.name!r} written twice"
                )
            defined[op.out.name] = op.out.dims
        for t in self.outputs:
            if defined.get(t.name) != t.dims:
                raise ValueError(
                    f"{self.name}: output {t.name!r} is never computed"
                )

    @property
    def temporaries(self) -> Tuple[Tensor, ...]:
        """Tensors that are neither inputs nor outputs."""
        keep = {t.name for t in self.inputs + self.outputs}
        return tuple(
            op.out for op in self.body if op.out.name not in keep
        )

    def describe(self) -> str:
        lines = [f"program {self.name}"
                 f"({', '.join(t.describe() for t in self.inputs)})"
                 f" -> {', '.join(t.name for t in self.outputs)}:"]
        for op in self.body:
            if isinstance(op, Contract):
                lines.append(
                    f"  {op.out.name} = contract[{op.spec}]"
                    f"({op.a.name}, {op.b.name})"
                )
            elif isinstance(op, Add):
                lines.append(f"  {op.out.name} = {op.a.name} + {op.b.name}")
            elif isinstance(op, Scale):
                lines.append(
                    f"  {op.out.name} = {op.alpha!r} * {op.a.name}"
                )
            else:
                lines.append(
                    f"  {op.out.name} = permute({op.a.name}, "
                    f"{op.perm})"
                )
        return "\n".join(lines)


def program_flops(prog: Program, nel: int) -> float:
    """Floating-point operations of one program execution.

    Derived from the contraction list — ``2 * |out| * |contracted|``
    per :class:`Contract`, ``|out|`` per :class:`Add`/:class:`Scale`,
    zero for :class:`Permute` — so any program added to the registry is
    priced with no per-variant hand formula.
    """
    return sum(op.flops(nel) for op in prog.body)


def program_mem_bytes(prog: Program, nel: int, itemsize: int = 8) -> float:
    """Minimum memory traffic of one program execution, in bytes.

    Counts every *streamed* tensor touched by each op — operands and
    result carrying the dynamic element axis.  Stationary operator
    matrices (``N x N``-ish, no batch axis) are assumed cache-resident
    and excluded, matching the closed-form ``16 N^3 nel`` accounting
    the counters model has always used for the derivative kernels.
    """

    def streamed(t: Tensor) -> bool:
        return BATCH_AXIS in t.axes

    total = 0
    for op in prog.body:
        for t in op.reads():
            if streamed(t):
                total += t.size(nel)
        if streamed(op.out):
            total += op.out.size(nel)
    return float(itemsize * total)


# ---------------------------------------------------------------------
# the flagship programs
# ---------------------------------------------------------------------

#: Direction letter -> index position contracted in the field tensor.
_DERIV_AXIS = {"r": 1, "s": 2, "t": 3}


def _derivative_program(direction: str, n: int) -> Program:
    """``dud{direction}``: contract the operator against one axis.

    The field is ``u[e,m?,...]`` with the contracted axis ``m``
    standing in the direction's slot; the operator row axis takes its
    place in the output — e.g. ``duds``: ``out[e,i,j,k] =
    sum_m D[j,m] u[e,i,m,k]``.
    """
    slot = _DERIV_AXIS[direction]
    out_axes = "eijk"
    row = out_axes[slot]
    in_axes = out_axes[:slot] + "m" + out_axes[slot + 1:]
    u = tensor("u", in_axes, **{ax: n for ax in in_axes if ax != "e"})
    dmat = tensor("D", row + "m", **{row: n, "m": n})
    out = tensor("du", out_axes, i=n, j=n, k=n)
    return Program(
        name=f"dud{direction}",
        inputs=(u, dmat),
        outputs=(out,),
        body=(Contract(out=out, a=dmat, b=u, sum_axes=("m",)),),
        params={"n": n},
    )


def _grad_program(n: int) -> Program:
    """All three reference-space derivatives of one field.

    The field ``u[e,a,b,c]`` is read three times, contracting a
    different axis each time against the same operator matrix:

    * ``du_r[e,x,b,c] = sum_a D[x,a] u[e,a,b,c]``
    * ``du_s[e,a,y,c] = sum_b D[y,b] u[e,a,b,c]``
    * ``du_t[e,a,b,z] = sum_c D[z,c] u[e,a,b,c]``
    """
    u = tensor("u", "eabc", a=n, b=n, c=n)
    dmat = tensor("D", "xa", x=n, a=n)
    ops: List[Op] = []
    outs: List[Tensor] = []
    for slot, (row, col) in enumerate(
        (("x", "a"), ("y", "b"), ("z", "c")), start=1
    ):
        out_axes = list(u.axes)
        out_axes[slot] = row
        out = Tensor(
            f"du_{'rst'[slot - 1]}", tuple(out_axes), (None, n, n, n)
        )
        ops.append(
            Contract(
                out=out,
                a=Tensor("D", (row, col), (n, n)),
                b=u,
                sum_axes=(col,),
            )
        )
        outs.append(out)
    return Program(
        name="grad",
        inputs=(u, dmat),
        outputs=tuple(outs),
        body=tuple(ops),
        params={"n": n},
    )


def _interp_program(name: str, n_from: int, n_to: int) -> Program:
    """Tensor-product application of a 1-D transfer operator.

    The dealiasing pair ("an element is first mapped to a finer mesh
    and later mapped back"): apply ``J (n_to, n_from)`` along each of
    the three non-batch axes in r, s, t order — the canonical
    association; the reassociation pass may reorder it.
    """
    u = tensor("u", "eabc", a=n_from, b=n_from, c=n_from)
    j = tensor("J", "xa", x=n_to, a=n_from)
    # apply along axis 1 (r): contract a against J's column axis
    t1 = Tensor("t1", ("e", "x", "b", "c"), (None, n_to, n_from, n_from))
    c1 = Contract(
        out=t1,
        a=Tensor("J", ("x", "a"), (n_to, n_from)),
        b=u,
        sum_axes=("a",),
    )
    t2 = Tensor("t2", ("e", "x", "y", "c"), (None, n_to, n_to, n_from))
    c2 = Contract(
        out=t2,
        a=Tensor("J", ("y", "b"), (n_to, n_from)),
        b=t1,
        sum_axes=("b",),
    )
    out = Tensor("v", ("e", "x", "y", "z"), (None, n_to, n_to, n_to))
    c3 = Contract(
        out=out,
        a=Tensor("J", ("z", "c"), (n_to, n_from)),
        b=t2,
        sum_axes=("c",),
    )
    return Program(
        name=name,
        inputs=(u, j),
        outputs=(out,),
        body=(c1, c2, c3),
        params={"n": n_from, "m": n_to},
    )


#: Names of every registered program family.
PROGRAMS = ("dudr", "duds", "dudt", "grad", "interp_fine", "interp_coarse")


@lru_cache(maxsize=None)
def build_program(name: str, n: int, m: Optional[int] = None) -> Program:
    """Instantiate a registry program at concrete sizes.

    ``m`` is the fine-grid size for the interp programs (defaults to
    the 3/2-rule) and ignored elsewhere.
    """
    if name in ("dudr", "duds", "dudt"):
        return _derivative_program(name[-1], n)
    if name == "grad":
        return _grad_program(n)
    if name in ("interp_fine", "interp_coarse"):
        if m is None:
            from ..kernels.operators import dealias_order

            m = dealias_order(n)
        if name == "interp_fine":
            return _interp_program(name, n, m)
        return _interp_program(name, m, n)
    raise KeyError(f"unknown program {name!r} (known: {PROGRAMS})")


def direction_program(direction: str) -> str:
    """Map a derivative direction letter to its program name."""
    if direction not in _DERIV_AXIS:
        raise ValueError(f"unknown direction {direction!r}")
    return f"dud{direction}"
