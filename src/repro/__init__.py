"""repro — a from-scratch reproduction of CMT-bone (CLUSTER 2015).

Kumar et al., *CMT-bone: A Mini-App for Compressible Multiphase
Turbulence Simulation Software*, IEEE CLUSTER 2015.

The package rebuilds the mini-app and every substrate it stands on:

* :mod:`repro.mpi` — a simulated MPI (thread-per-rank SPMD runtime with
  deterministic virtual time from a LogGP-style network model),
* :mod:`repro.perfmodel` — machine/network/topology cost models with
  presets for the paper's platforms,
* :mod:`repro.kernels` — GLL operators, the O(N^4) derivative kernel in
  basic/fused variants, dealiasing, and PAPI-style analytic counters,
* :mod:`repro.mesh` — box meshes, 3-D processor grids, and the C0/DG
  global numberings,
* :mod:`repro.gs` — the gather-scatter library with pairwise, crystal-
  router, and allreduce exchanges plus setup-time auto-tuning,
* :mod:`repro.solver` — the conceptual CMT-nek: a parallel DG
  compressible Euler solver,
* :mod:`repro.core` — the CMT-bone mini-app and its Nekbone comparator,
* :mod:`repro.analysis` — gprof- and mpiP-style report generation.

Quick start::

    from repro.mpi import Runtime
    from repro.core import CMTBoneConfig, run_cmtbone

    cfg = CMTBoneConfig(n=8, local_shape=(2, 2, 2), nsteps=5)
    rt = Runtime(nranks=8)
    results = rt.run(run_cmtbone, args=(cfg,))
    print(rt.job_profile().top_sites(10))
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "gs",
    "kernels",
    "mesh",
    "mpi",
    "perfmodel",
    "solver",
]
