"""Ablation — blocking vs split-phase overlapped face exchange.

The overlapped schedule (``CMTBoneConfig(overlap=True)``) posts the
gather-scatter exchange right after ``full2face_cmt`` and finishes it
after the ``add2s2`` update, so the update's compute hides message
flight time.  This ablation quantifies the modelled win across the
paper's three workload knobs — polynomial points N, elements per rank
Nel, and process count P — on the Compton machine model.

Checked claims: overlap never increases the modelled step time (the
schedule charges identical compute and posts sends no later), and in a
communication-bound configuration (small Nel, larger P) the *exposed*
communication time is strictly lower, with the difference credited as
hidden communication.
"""

import pytest

from repro.analysis import render_table
from repro.core import CMTBoneConfig, run_cmtbone
from repro.mpi import Runtime
from repro.perfmodel import MachineModel


def _run(overlap, machine, n, local, proc, nranks, nsteps=4):
    """(step time, exposed comm, hidden comm), max over ranks."""
    config = CMTBoneConfig(
        n=n,
        local_shape=local,
        proc_shape=proc,
        nsteps=nsteps,
        work_mode="proxy",
        gs_method="pairwise",
        overlap=overlap,
    )
    runtime = Runtime(nranks=nranks, machine=machine)
    results = runtime.run(run_cmtbone, args=(config,))
    step = max(r.vtime_total for r in results) / nsteps
    comm = max(r.vtime_comm for r in results)
    hidden = max(r.vtime_hidden_comm for r in results)
    return step, comm, hidden


def _compare(machine, n, local, proc, nranks):
    t_blk, c_blk, _ = _run(False, machine, n, local, proc, nranks)
    t_ovl, c_ovl, hidden = _run(True, machine, n, local, proc, nranks)
    return {
        "blocking": t_blk,
        "overlap": t_ovl,
        "speedup": t_blk / t_ovl if t_ovl else 1.0,
        "comm_blocking": c_blk,
        "comm_overlap": c_ovl,
        "hidden": hidden,
    }


@pytest.mark.slow
def test_overlap_ablation_sweep(benchmark, report):
    """Full (N, Nel, P) sweep of the modelled overlap win."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    machine = MachineModel.preset("compton")
    cases = [
        (n, local, proc)
        for n in (5, 10, 15)
        for local in ((1, 1, 1), (3, 3, 3))
        for proc in ((2, 2, 2), (4, 2, 2), (4, 4, 1))
    ]
    rows = []
    for n, local, proc in cases:
        nranks = proc[0] * proc[1] * proc[2]
        r = _compare(machine, n, local, proc, nranks)
        rows.append((
            n, "x".join(map(str, local)), nranks,
            r["blocking"], r["overlap"], r["speedup"], r["hidden"],
        ))
        # Never slower, for every configuration in the sweep.
        assert r["overlap"] <= r["blocking"] * (1 + 1e-12)
    report(
        "Ablation — blocking vs overlapped (split-phase) exchange, "
        "CMT-bone step time (compton model)\n"
        + render_table(
            ["N", "Nel/rank", "P", "blocking (s)", "overlap (s)",
             "speedup", "hidden comm (s)"],
            rows, floatfmt="{:.4g}",
        )
    )
    # The win grows as the workload gets more communication-bound:
    # the smallest-Nel configs hide the most relative to step time.
    small = [r for r in rows if r[1] == "1x1x1"]
    assert max(r[5] for r in small) >= max(r[5] for r in rows if r[1] != "1x1x1")


def test_overlap_ablation_smoke(report):
    """Tiny communication-bound config: the CI acceptance check."""
    machine = MachineModel.preset("compton")
    # Nel=1 per rank, 16 ranks: almost no volume work, so the exchange
    # dominates the blocking step — the regime overlap targets.
    r = _compare(machine, n=5, local=(1, 1, 1), proc=(4, 2, 2), nranks=16)
    report(
        "Overlap smoke (N=5, Nel=1, P=16, compton)\n"
        + render_table(
            ["blocking (s)", "overlap (s)", "speedup",
             "exposed comm blk (s)", "exposed comm ovl (s)", "hidden (s)"],
            [(r["blocking"], r["overlap"], r["speedup"],
              r["comm_blocking"], r["comm_overlap"], r["hidden"])],
            floatfmt="{:.4g}",
        )
    )
    # Modelled step time never increases with overlap...
    assert r["overlap"] <= r["blocking"] * (1 + 1e-12)
    # ...and in this comm-bound config the exposed communication is
    # strictly lower, with the difference credited as hidden time.
    assert r["comm_overlap"] < r["comm_blocking"]
    assert r["hidden"] > 0.0
