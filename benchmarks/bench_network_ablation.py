"""Ablation — how the network model moves the gs-method decision.

Section VI motivates building "robust network models for system
simulation": which exchange algorithm wins depends on the machine's
latency/bandwidth balance, which is exactly what co-design studies
vary.  This ablation sweeps the network parameters around the Compton
baseline and reports each method's time and the winner.

Checked claims: higher latency favours the (fewer-message) crystal
router relative to pairwise; higher bandwidth cost (lower bandwidth)
punishes the allreduce method hardest, since it ships the dense global
vector.
"""

from dataclasses import replace


from repro.analysis import render_table
from repro.gs import gs_setup, time_method
from repro.mesh import BoxMesh, Partition, continuous_numbering
from repro.mpi import Runtime
from repro.perfmodel import MachineModel

P = 16
PROC = (4, 2, 2)
LOCAL = (2, 2, 2)
N = 6


def _time_methods(machine):
    mesh = BoxMesh(
        shape=tuple(a * b for a, b in zip(PROC, LOCAL)), n=N
    )
    part = Partition(mesh, proc_shape=PROC)

    def main(comm):
        handle = gs_setup(continuous_numbering(part, comm.rank), comm)
        return {
            m: time_method(handle, m, trials=2).avg
            for m in ("pairwise", "crystal", "allreduce")
        }

    runtime = Runtime(nranks=P, machine=machine)
    return runtime.run(main)[0]


def test_network_ablation(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = MachineModel.preset("compton")
    nets = {
        "baseline (Compton)": base,
        "20x latency": base.with_network(
            replace(base.network, latency=base.network.latency * 20,
                    o_send=base.network.o_send * 20,
                    o_recv=base.network.o_recv * 20)
        ),
        "10x less bandwidth": base.with_network(
            replace(base.network, bandwidth=base.network.bandwidth / 10,
                    shm_bandwidth=base.network.shm_bandwidth / 10)
        ),
        "0.1x latency": base.with_network(
            replace(base.network, latency=base.network.latency / 10,
                    o_send=base.network.o_send / 10,
                    o_recv=base.network.o_recv / 10)
        ),
    }
    table = {}
    rows = []
    for name, machine in nets.items():
        t = _time_methods(machine)
        table[name] = t
        winner = min(t, key=t.get)
        rows.append((name, t["pairwise"], t["crystal"], t["allreduce"],
                     winner))
    report(
        "Ablation — gs method times under network variants "
        f"(C0 numbering, P={P}, N={N})\n"
        + render_table(
            ["network", "pairwise", "crystal", "allreduce", "winner"],
            rows, floatfmt="{:.3e}",
        )
    )

    # Latency inflation must help crystal *relative to* pairwise: the
    # crystal/pairwise ratio shrinks when messages get expensive.
    r_base = table["baseline (Compton)"]
    r_lat = table["20x latency"]
    assert (r_lat["crystal"] / r_lat["pairwise"]) < (
        r_base["crystal"] / r_base["pairwise"]
    )

    # Bandwidth cuts hit the dense-vector allreduce hardest.
    r_bw = table["10x less bandwidth"]
    assert (r_bw["allreduce"] / r_base["allreduce"]) > (
        r_bw["pairwise"] / r_base["pairwise"]
    )
    assert (r_bw["allreduce"] / r_base["allreduce"]) > (
        r_bw["crystal"] / r_base["crystal"]
    )
