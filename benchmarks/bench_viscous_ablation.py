"""Ablation — the Navier-Stokes branch's extra kernel load.

Eq. (1)'s flux is ``f(U, grad U)``: the viscous branch adds 12 more
gradient evaluations per rhs (velocity tensor + temperature), all
through the same O(N^4) derivative kernel.  This ablation compares the
Euler and Navier-Stokes rhs costs and confirms the paper's central
co-design fact gets *stronger* with more physics: the derivative
kernel's share of the step grows.

Checked claims: NS steps cost more than Euler steps; the derivative
phase's share of compute rises in the NS branch; physics stays exact
(freestream drift at machine epsilon in both).
"""

import numpy as np

from repro.analysis import render_table
from repro.analysis.callgraph import CallGraphProfiler
from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import (
    CMTSolver,
    SolverConfig,
    ViscousModel,
    uniform_state,
)

MESH = BoxMesh(shape=(4, 2, 2), n=8)
PART = Partition(MESH, proc_shape=(2, 1, 1))


def _run(viscous):
    def main(comm):
        solver = CMTSolver(
            comm, PART,
            config=SolverConfig(
                gs_method="pairwise",
                viscosity=ViscousModel(mu=1e-3) if viscous else None,
            ),
        )
        prof = CallGraphProfiler(comm.clock)
        solver.profiler = prof
        st = uniform_state(PART.nel_local, MESH.n, vel=(0.2, 0.1, 0.0))
        u0 = st.u.copy()
        t0 = comm.clock.now
        st = solver.run(st, nsteps=3, dt=2e-4)
        dt_step = (comm.clock.now - t0) / 3.0
        drift = float(np.max(np.abs(st.u - u0)))
        deriv = prof.stats["derivative"].self_time
        total = sum(s.self_time for s in prof.stats.values())
        return dt_step, drift, deriv / total

    res = Runtime(nranks=2).run(main)
    return max(r[0] for r in res), max(r[1] for r in res), res[0][2]


def test_viscous_ablation(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    t_euler, drift_e, deriv_e = _run(False)
    t_ns, drift_ns, deriv_ns = _run(True)
    report(
        "Ablation — Euler vs Navier-Stokes rhs cost "
        f"(N={MESH.n}, {MESH.nelgt} elements, 2 ranks)\n"
        + render_table(
            ["equations", "step time (s)", "derivative share",
             "freestream drift"],
            [
                ("Euler", t_euler, deriv_e, drift_e),
                ("Navier-Stokes", t_ns, deriv_ns, drift_ns),
            ],
            floatfmt="{:.4g}",
        )
        + "\nThe viscous branch adds 12 gradient evaluations per rhs; "
        "the O(N^4) kernel's dominance grows\nwith physics fidelity — "
        "the co-design signal only strengthens beyond the mini-app "
        "snapshot."
    )
    assert t_ns > t_euler
    assert deriv_ns > deriv_e
    assert drift_e < 1e-11 and drift_ns < 1e-11
