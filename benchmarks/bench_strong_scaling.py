"""Ablation — strong scaling of the CMT-bone timestep.

The Nek lineage's claim to fame is scalability ("demonstrated strong
scaling to over a million MPI ranks", Section III-A).  This benchmark
strong-scales a fixed global problem across the simulated Compton and
reports the classic table: step time, speedup, parallel efficiency,
and the communication share that erodes it.

Checked claims: speedup is monotone in P; efficiency at P=32 stays
above 50% for this surface-to-volume ratio; the communication share
grows monotonically with P.
"""


from repro.analysis import render_table
from repro.core import CMTBoneConfig, run_cmtbone
from repro.mesh import factor3
from repro.mpi import Runtime
from repro.perfmodel import MachineModel

#: Fixed global element grid (divisible by every tested P's factoring).
GLOBAL = (8, 8, 4)
PS = [1, 2, 4, 8, 16, 32]
N = 8


def _run(p):
    proc = factor3(p)
    local = tuple(g // q for g, q in zip(GLOBAL, proc))
    config = CMTBoneConfig(
        n=N,
        local_shape=local,
        proc_shape=proc,
        nsteps=3,
        work_mode="proxy",
        gs_method="pairwise",
        monitor_every=1,
    )
    runtime = Runtime(nranks=p, machine=MachineModel.preset("compton"))
    results = runtime.run(run_cmtbone, args=(config,))
    t_step = max(r.vtime_total for r in results) / config.nsteps
    comm_frac = max(
        r.vtime_comm / r.vtime_total for r in results
    )
    return t_step, comm_frac


def test_strong_scaling(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    times = {}
    fracs = {}
    for p in PS:
        t, f = _run(p)
        times[p] = t
        fracs[p] = f
        speedup = times[PS[0]] / t
        rows.append((p, t, speedup, speedup / p, f"{100 * f:.1f}%"))
    report(
        f"Ablation — strong scaling, fixed {GLOBAL} element grid, N={N} "
        "(Compton model)\n"
        + render_table(
            ["P", "step time (s)", "speedup", "efficiency", "comm share"],
            rows, floatfmt="{:.4g}",
        )
    )

    # Monotone speedup.
    for a, b in zip(PS, PS[1:]):
        assert times[b] < times[a]
    # Reasonable efficiency at the largest tested P.
    assert times[PS[0]] / times[32] / 32 > 0.5
    # Communication share grows as local work shrinks.
    assert fracs[32] > fracs[2]
