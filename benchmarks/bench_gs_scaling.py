"""Ablation — gather-scatter method scaling with rank count.

Section VI: "All-to-all communication using the crystal router
exchange is guaranteed to complete in log2(P) stages" and "as new
kernels get added ... it is possible that crystal router may be used
instead of pairwise exchange".

This sweep runs the CMT-bone (DG faces, 6 fat neighbours) and Nekbone
(C0, up to 26 mixed-size neighbours) handles across P and records each
method's modelled time.  Checked claims: message rounds per rank grow
~log2(P) for crystal but stay constant for pairwise; pairwise wins for
the DG pattern at every tested P; the crystal/pairwise gap narrows for
the C0 pattern.
"""

import math

import pytest

from repro.analysis import render_table
from repro.gs import gs_setup, time_method
from repro.mesh import (
    BoxMesh,
    Partition,
    continuous_numbering,
    dg_face_numbering,
    factor3,
)
from repro.mpi import Runtime
from repro.perfmodel import MachineModel

PS = [4, 8, 16, 32]
LOCAL = (2, 2, 2)
N = 6


def _run(p, numbering):
    proc = factor3(p)
    mesh = BoxMesh(
        shape=tuple(a * b for a, b in zip(proc, LOCAL)), n=N
    )
    part = Partition(mesh, proc_shape=proc)

    def main(comm):
        handle = gs_setup(numbering(part, comm.rank), comm)
        return {
            m: time_method(handle, m, trials=2)
            for m in ("pairwise", "crystal")
        }

    runtime = Runtime(nranks=p, machine=MachineModel.preset("compton"))
    results = runtime.run(main)
    return results[0], runtime


def test_gs_scaling_with_ranks(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    data = {}
    for p in PS:
        dg, _ = _run(p, dg_face_numbering)
        c0, _ = _run(p, continuous_numbering)
        data[p] = (dg, c0)
        rows.append((
            p,
            dg["pairwise"].avg, dg["crystal"].avg,
            dg["crystal"].avg / dg["pairwise"].avg,
            c0["pairwise"].avg, c0["crystal"].avg,
            c0["crystal"].avg / c0["pairwise"].avg,
        ))
    report(
        "Ablation — gs method time vs P "
        f"(local {LOCAL} elements, N={N}, Compton model)\n"
        + render_table(
            ["P", "DG pairwise", "DG crystal", "DG ratio",
             "C0 pairwise", "C0 crystal", "C0 ratio"],
            rows, floatfmt="{:.3e}",
        )
    )

    for p in PS:
        dg, c0 = data[p]
        # pairwise wins for the DG pattern at every P (Fig. 7's story).
        assert dg["pairwise"].avg < dg["crystal"].avg
        # crystal is relatively better on the many-small-message C0
        # pattern than on the DG pattern.
        assert (c0["crystal"].avg / c0["pairwise"].avg) < (
            dg["crystal"].avg / dg["pairwise"].avg
        ) * 1.05


def test_crystal_rounds_logarithmic(benchmark, report):
    """Crystal stage count per gs_op grows like log2 P."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for p in (4, 8, 16):
        proc = factor3(p)
        mesh = BoxMesh(
            shape=tuple(a * b for a, b in zip(proc, LOCAL)), n=N
        )
        part = Partition(mesh, proc_shape=proc)

        def main(comm):
            from repro.gs import gs_op
            from repro.mpi import SUM
            import numpy as np

            handle = gs_setup(dg_face_numbering(part, comm.rank), comm)
            gs_op(handle, np.ones(handle.shape), op=SUM, method="crystal",
                  site="probe")
            return None

        runtime = Runtime(nranks=p)
        runtime.run(main)
        prof = runtime.job_profile()
        stage_msgs = sum(
            r.count for r in prof.aggregates()
            if r.op == "MPI_Isend" and r.site == "probe"
        )
        per_rank = stage_msgs / p
        rows.append((p, per_rank, math.log2(p)))
        # One message per hypercube stage per rank (pow2: no fold).
        assert per_rank == pytest.approx(math.log2(p), abs=0.01)
    report(
        "Crystal router stage messages per rank vs log2(P)\n"
        + render_table(["P", "msgs/rank", "log2(P)"], rows,
                       floatfmt="{:.3g}")
    )
