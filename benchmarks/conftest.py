"""Shared fixtures for the figure-reproduction benchmarks.

Every module regenerates one table or figure from the paper's
evaluation.  Tables print through the ``report`` fixture (bypassing
pytest capture so they land in ``bench_output.txt`` when the suite is
run with ``pytest benchmarks/ --benchmark-only | tee ...``) and are
also written to ``benchmarks/results/<name>.txt`` for later diffing.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(capsys, request):
    """Print a paper-style block to the real terminal and a results file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / f"{request.node.name}.txt"
    chunks = []

    def _emit(text: str) -> None:
        chunks.append(str(text))
        with capsys.disabled():
            print(f"\n{text}")

    yield _emit
    if chunks:
        out_path.write_text("\n".join(chunks) + "\n")


@pytest.fixture(scope="session")
def mpip_run():
    """One shared CMT-bone communication-profiling run (Figs. 8-10).

    64 ranks, proxy work mode, mild compute imbalance (the realism knob
    documented in DESIGN.md): the paper's production runs are not
    perfectly balanced, and the MPI_Wait-dominated profile of Fig. 9
    only appears when ranks drift apart.
    """
    from repro.core import CMTBoneConfig, run_cmtbone
    from repro.mpi import Runtime
    from repro.perfmodel import MachineModel

    # The paper profiles production-length runs, where the one-time
    # setup/auto-tune is amortized away; 30 steps is enough for the
    # steady-state exchange traffic to dominate the profile.
    config = CMTBoneConfig(
        n=10,
        local_shape=(3, 3, 2),
        proc_shape=(4, 4, 4),
        nsteps=30,
        work_mode="proxy",
        gs_method=None,            # run the full auto-tune, as the app does
        monitor_every=1,
        compute_imbalance=0.2,
    )
    runtime = Runtime(nranks=64, machine=MachineModel.preset("compton"))
    results = runtime.run(run_cmtbone, args=(config,))
    return runtime, results, config
