"""Ablation — dynamic load balancing vs injected compute imbalance.

Sweeps the per-rank compute-load jitter (``compute_imbalance``) with
the load balancer off and on (``lb_mode="auto"``) and measures the
quantities the LB subsystem exists to move:

* the **measured cost imbalance** — max/mean of the per-step virtual
  cost over ranks in the final monitoring window (steady state, i.e.
  after the last rebalance when LB is on);
* the **MPI_Wait share** of MPI time — waiting ranks are the victims
  of imbalance, so shrinking the compute spread shrinks the
  MPI_Wait-dominated profile of the paper's Fig. 9;
* the **compute (non-MPI) spread** from the mpiP-style report.

The LB-off baseline runs ``lb_mode="manual"``: the cost monitor runs
(so the steady-state cost metric exists with the same meaning on both
sides) but never corrects, and adds zero communication.

Checked claims (the ISSUE acceptance criteria): at
``compute_imbalance=0.4`` on 8 ranks, enabling LB reduces both the
measured cost imbalance and the MPI_Wait share versus LB-off; and a
fault-free solver run with LB enabled produces bitwise-identical
physical fields to LB-off (compared keyed by global element id, since
LB changes which rank holds which element).
"""

import numpy as np
import pytest

from repro.analysis import op_share, render_table, summarize_compute
from repro.core import CMTBoneConfig
from repro.core.cmtbone import CMTBone
from repro.lb import RebalancePolicy
from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.perfmodel import MachineModel
from repro.solver import CMTSolver, SolverConfig, uniform_state

NRANKS = 8
NSTEPS = 24


def _run(imbalance, lb_mode):
    config = CMTBoneConfig(
        n=8,
        local_shape=(2, 2, 2),
        proc_shape=(2, 2, 2),
        nsteps=NSTEPS,
        work_mode="proxy",
        gs_method="pairwise",
        monitor_every=4,
        compute_imbalance=imbalance,
        lb_mode=lb_mode,
        lb_threshold=1.05,
        lb_min_interval=4,
    )
    runtime = Runtime(
        nranks=NRANKS, machine=MachineModel.preset("compton")
    )
    results = runtime.run(lambda comm: CMTBone(comm, config).run())
    profile = runtime.job_profile()
    costs = [r.lb_window_cost for r in results]
    mean = sum(costs) / len(costs)
    return {
        "cost_imbalance": max(costs) / mean if mean else 0.0,
        "wait_share": op_share(profile, "MPI_Wait"),
        "compute_spread": summarize_compute(profile)[3],
        "rebalances": max(r.lb_rebalances for r in results),
        "makespan": max(s.total for s in runtime.clock_stats()),
    }


def _sweep(imbalances, report, title):
    rows, metrics = [], {}
    for imb in imbalances:
        for mode in ("manual", "auto"):
            m = _run(imb, mode)
            metrics[(imb, mode)] = m
            rows.append((
                imb,
                "off" if mode == "manual" else "auto",
                m["rebalances"],
                m["cost_imbalance"],
                m["compute_spread"],
                100.0 * m["wait_share"],
                m["makespan"],
            ))
    report(
        f"{title}\n"
        f"({NRANKS} ranks, {NSTEPS} steps, proxy work, pairwise gs; "
        f"'off' = monitor only, 'auto' rebalances at threshold 1.05)\n"
        + render_table(
            ["imbalance", "lb", "rebal", "cost max/mean",
             "compute max/mean", "MPI_Wait %", "makespan (s)"],
            rows, floatfmt="{:.4g}",
        )
    )
    return metrics


# -- bitwise identity ------------------------------------------------------

MESH = BoxMesh(shape=(4, 4, 4), n=4)
PART = Partition(MESH, proc_shape=(2, 2, 2))
DT = 1e-3


def _solver_fields(lb_policy):
    """Final fields keyed by global element id (layout-independent)."""

    def main(comm):
        solver = CMTSolver(
            comm, PART,
            config=SolverConfig(
                gs_method="pairwise",
                compute_imbalance=0.4,
                lb=lb_policy,
            ),
        )
        state = uniform_state(PART.nel_local, MESH.n, vel=(0.2, 0.1, 0.0))
        state.u[0] += 1e-3 * np.sin(
            np.arange(state.u[0].size)
        ).reshape(state.u[0].shape)
        final = solver.run(state, nsteps=12, dt=DT)
        return solver.local_element_ids(), final.u

    runtime = Runtime(
        nranks=NRANKS, machine=MachineModel.preset("compton")
    )
    fields = {}
    for ids, u in runtime.run(main):
        for k, gid in enumerate(ids):
            fields[int(gid)] = u[:, k]
    return fields


@pytest.mark.slow
def test_lb_ablation_sweep(benchmark, report):
    """Full imbalance sweep with LB off/on."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    metrics = _sweep(
        (0.0, 0.2, 0.4, 0.6), report,
        "Ablation — dynamic load balancing vs injected compute imbalance",
    )
    # A balanced run never triggers a rebalance ...
    assert metrics[(0.0, "auto")]["rebalances"] == 0
    # ... and every imbalanced one improves both acceptance quantities.
    for imb in (0.2, 0.4, 0.6):
        off, on = metrics[(imb, "manual")], metrics[(imb, "auto")]
        assert on["rebalances"] >= 1
        assert on["cost_imbalance"] < off["cost_imbalance"]
        assert on["wait_share"] < off["wait_share"]


def test_lb_ablation_smoke(report):
    """The ISSUE acceptance point: imbalance 0.4, 8 ranks, LB off vs on."""
    metrics = _sweep(
        (0.4,), report,
        "LB-ablation smoke — compute_imbalance=0.4, LB off vs on",
    )
    off, on = metrics[(0.4, "manual")], metrics[(0.4, "auto")]
    assert on["rebalances"] >= 1
    assert on["cost_imbalance"] < off["cost_imbalance"]
    assert on["wait_share"] < off["wait_share"]
    assert on["compute_spread"] < off["compute_spread"]


def test_lb_bitwise_identity(report):
    """Fault-free LB-on fields are bitwise identical to LB-off."""
    off = _solver_fields(None)
    on = _solver_fields(RebalancePolicy(mode="auto", threshold=1.05))
    assert off.keys() == on.keys()
    identical = all(
        np.array_equal(off[gid], on[gid]) for gid in off
    )
    report(
        "LB bitwise identity — 8 ranks, imbalance 0.4, 12 steps: "
        f"{len(off)} elements compared by global id, "
        f"identical={identical}"
    )
    assert identical
