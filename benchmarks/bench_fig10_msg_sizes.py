"""Fig. 10 — total and average message sizes of frequent MPI calls.

Paper: mpiP's message-size view of the same run — many face-exchange
messages of moderate (surface-proportional) size dominating the
traffic, with setup/collective messages contributing fewer, different-
sized transfers.

Reproduction: the shared run's per-callsite byte statistics.  Checked
claims: the most *frequent* sized call is the gs face exchange; its
average message size matches the analytic surface estimate (shared
face points x 8 bytes / neighbours); and total exchanged volume
dwarfs the setup traffic.
"""


from repro.analysis import message_size_report


def test_fig10_message_sizes(benchmark, report, mpip_run):
    runtime, results, config = mpip_run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    profile = runtime.job_profile()

    report(
        "Fig. 10 — message sizes of the most frequently called MPI "
        f"calls (P={profile.nranks})\n"
        + message_size_report(profile, 15)
    )

    rows = profile.message_size_rows(50)
    by_site = {}
    for r in rows:
        key = (r.op, r.site)
        by_site[key] = r

    # Claim 1: the most frequent sized call is the gs_op_ exchange.
    assert "gs_op" in rows[0].site

    # Claim 2: its average size matches the analytic surface estimate.
    # Each rank ships its condensed shared face values to 6 neighbours:
    # per-message bytes = shared-with-neighbour points x 8.
    lx, ly, lz = config.local_shape
    n = config.n
    per_face_points = {
        "x": ly * lz * n * n,
        "y": lx * lz * n * n,
        "z": lx * ly * n * n,
    }
    expected_sizes = {v * 8 for v in per_face_points.values()}
    sends = by_site.get(("MPI_Isend", "gs_op_"))
    assert sends is not None
    assert min(expected_sizes) <= sends.bytes_avg <= max(expected_sizes)

    # Claim 3: steady-state exchange volume dwarfs one-time setup.
    setup_bytes = sum(
        r.bytes_total for r in rows if "gs_setup" in r.site
    )
    exchange_bytes = sum(
        r.bytes_total for r in rows if r.site == "gs_op_"
    )
    assert exchange_bytes > 3 * setup_bytes
