"""Fig. 9 — time spent in the twenty most expensive MPI calls.

Paper: "From this plot we see that a large amount of time is spent in
MPI_Wait for synchronization.  It demonstrates the need for better
load balancing in the application."

Reproduction: the shared Fig. 8-10 run's top-20 callsite table.
Checked claims: MPI_Wait is the single most expensive operation; the
wait time is attached to the gather-scatter exchange call site; and
the nearest-neighbour exchange (isend/wait at ``gs_op_``) outweighs
the collectives.
"""


from repro.analysis import top_calls_report, wait_dominance


def test_fig09_top_mpi_calls(benchmark, report, mpip_run):
    runtime, results, config = mpip_run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    profile = runtime.job_profile()

    report(
        "Fig. 9 — top 20 MPI call sites "
        f"(P={profile.nranks}, {config.nsteps} steps x "
        f"{config.rk_stages} RK stages)\n"
        + top_calls_report(profile, 20)
    )

    # Claim 1: MPI_Wait dominates total MPI time.
    op, share = wait_dominance(profile)
    assert op == "MPI_Wait"
    assert share > 0.30

    # Claim 2: the top single call site is the wait inside gs_op_.
    top = profile.top_sites(1)[0]
    assert top.op == "MPI_Wait"
    assert "gs_op" in top.site

    # Claim 3: point-to-point exchange time exceeds collective time
    # (nearest-neighbour updates are the dominant communication).
    by_op = profile.by_op()
    p2p = sum(by_op.get(k, 0.0)
              for k in ("MPI_Wait", "MPI_Isend", "MPI_Send", "MPI_Recv"))
    coll = sum(by_op.get(k, 0.0)
               for k in ("MPI_Allreduce", "MPI_Barrier", "MPI_Alltoall",
                         "MPI_Bcast"))
    assert p2p > coll
