"""Ablation — checkpoint cadence vs campaign time under injected faults.

Sweeps ``--checkpoint-every`` for a fixed fault schedule and measures
the total campaign virtual time (attempt makespans + restart overhead)
through the crash-recovery loop.  Checkpointing too often pays I/O
every few steps; too rarely pays replayed lost work after every crash
— the classic U-shaped trade-off whose analytic minimum is the
Young/Daly interval ``sqrt(2 * C * MTBF)``.

The machine's I/O cost is tuned so one checkpoint costs about half a
timestep and the injected crash rate gives an MTBF of ~12 steps, which
puts the Young/Daly optimum near 3.5 steps — well inside the swept
range, so both the U-shape and the optimum's location are checkable.

Checked claims: campaign time is minimized at a cadence within about a
factor of two of the Young/Daly estimate, and both extremes — a
checkpoint every step, and no checkpointing at all — are strictly
worse than the optimum.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.analysis import render_table
from repro.faults import CrashEvent, FaultPlan
from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.perfmodel import MachineModel
from repro.solver import (
    CMTSolver,
    SolverConfig,
    run_with_recovery,
    uniform_state,
)

MESH = BoxMesh(shape=(4, 2, 2), n=4)
PART = Partition(MESH, proc_shape=(2, 1, 1))
DT = 1e-3
NSTEPS = 36
#: Crash schedule: three failures, deliberately misaligned with every
#: swept cadence so no cadence gets a free perfectly-timed checkpoint.
CRASH_STEPS = (8, 21, 31)


def _initial_state():
    st = uniform_state(PART.nel_local, MESH.n, vel=(0.2, 0.0, 0.0))
    st.u[0] += 1e-3 * np.sin(
        np.arange(st.u[0].size)
    ).reshape(st.u[0].shape)
    return st


def _setup(comm):
    solver = CMTSolver(
        comm, PART, config=SolverConfig(gs_method="pairwise")
    )
    return solver, _initial_state()


def _step_seconds(machine):
    """Fault-free per-step virtual time on this machine."""

    def main(comm):
        solver, state = _setup(comm)
        solver.run(state, nsteps=4, dt=DT)

    rt = Runtime(nranks=2, machine=machine)
    rt.run(main)
    return max(s.total for s in rt.clock_stats()) / 4


def _fault_machine():
    """Compton with I/O tuned so a checkpoint costs ~half a step."""
    base = MachineModel.preset("compton")
    t_step = _step_seconds(base)
    return dataclasses.replace(
        base,
        io_latency=0.5 * t_step,
        restart_latency=2.0 * t_step,
    ), t_step


def _campaign_time(machine, cadence, tmp_path):
    plan = FaultPlan(crashes=tuple(
        CrashEvent(rank=i % 2, step=s) for i, s in enumerate(CRASH_STEPS)
    ))
    _, rep = run_with_recovery(
        _setup, nranks=2, nsteps=NSTEPS, dt=DT,
        checkpoint_every=cadence,
        checkpoint_dir=(tmp_path / f"every{cadence}") if cadence else None,
        fault_plan=plan, machine=machine,
    )
    return rep


def _young_daly_steps(machine, t_step):
    ckpt_bytes = _initial_state().u.nbytes
    c = machine.checkpoint_seconds(ckpt_bytes)
    mtbf = NSTEPS / len(CRASH_STEPS) * t_step
    return MachineModel.young_daly_interval(c, mtbf) / t_step


def _sweep(cadences, tmp_path, report, title):
    machine, t_step = _fault_machine()
    tau_steps = _young_daly_steps(machine, t_step)
    rows, totals = [], {}
    for k in cadences:
        rep = _campaign_time(machine, k, tmp_path)
        totals[k] = rep.total_virtual_seconds
        rows.append((
            k if k else "never",
            len(rep.attempts),
            rep.steps_lost,
            rep.lost_work_seconds,
            rep.restart_overhead_seconds,
            rep.total_virtual_seconds,
        ))
    best = min(totals, key=totals.get)
    report(
        f"{title}\n"
        f"({NSTEPS} steps, 2 ranks, crashes at steps {CRASH_STEPS}; "
        f"Young/Daly optimum ~= {tau_steps:.2f} steps, "
        f"best swept cadence = {best if best else 'never'})\n"
        + render_table(
            ["ckpt every", "attempts", "steps lost", "lost work (s)",
             "restart ovh (s)", "campaign (s)"],
            rows, floatfmt="{:.4g}",
        )
    )
    return totals, best, tau_steps


@pytest.mark.slow
def test_fault_ablation_sweep(benchmark, report, tmp_path):
    """Full cadence sweep: U-shape with the minimum near Young/Daly."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    totals, best, tau_steps = _sweep(
        (1, 2, 3, 4, 6, 9, 12, 18, 0), tmp_path, report,
        "Ablation — checkpoint cadence vs campaign virtual time",
    )
    # The minimum sits within a factor of two of the analytic optimum
    # (discrete cadences and a 3-sample crash schedule blur it a bit).
    assert tau_steps / 2 <= best <= tau_steps * 2
    # Both extremes of the U are strictly worse than the optimum.
    assert totals[1] > totals[best]
    assert totals[0] > totals[best]
    # Every crashed campaign beats none at all only in real time, not
    # virtual: a fault-free reference must undercut them all.
    machine, _ = _fault_machine()
    _, clean = run_with_recovery(
        _setup, nranks=2, nsteps=NSTEPS, dt=DT, machine=machine,
    )
    assert clean.total_virtual_seconds < min(totals.values())


def test_fault_ablation_smoke(report, tmp_path):
    """Tiny 3-point sweep: the CI acceptance check."""
    totals, best, tau_steps = _sweep(
        (1, 4, 0), tmp_path, report,
        "Fault-ablation smoke — checkpoint cadence vs campaign time",
    )
    # Near-optimal cadence (4 ~ Young/Daly here) beats both extremes.
    assert math.isclose(tau_steps, 4, rel_tol=0.75)
    assert totals[4] < totals[1]
    assert totals[4] < totals[0]
