"""Fig. 4 — CMT-bone execution profile and partial call graph.

Paper: gprof on 8 MPI processes of an Intel i5-2500 desktop shows "the
majority of application time is spent in derivative calculation (ax_
routine, for flux divergence)", with ``full2face_cmt`` and ``gs_op_``
as the other key kernels.

Reproduction: run the mini-app on 8 simulated ranks of the ``i5-2500``
machine model and emit the merged flat profile + call graph from the
built-in region profiler.  Checked claims: ``ax_`` is the top self-time
region and the three Fig. 4 routines all appear.
"""


from repro.analysis import call_graph, flat_profile, merge_profiles
from repro.core import CMTBoneConfig, dominant_region, run_cmtbone
from repro.mpi import Runtime
from repro.perfmodel import MachineModel

CONFIG = CMTBoneConfig(
    n=10,
    local_shape=(2, 2, 2),
    proc_shape=(2, 2, 2),
    nsteps=10,
    work_mode="real",
    gs_method="pairwise",
)


def _run():
    runtime = Runtime(nranks=8, machine=MachineModel.preset("i5-2500"))
    results = runtime.run(run_cmtbone, args=(CONFIG,))
    return runtime, results


def test_fig04_callgraph(benchmark, report):
    (runtime, results) = benchmark.pedantic(_run, rounds=1, iterations=1)

    merged = merge_profiles([r.profiler for r in results])
    report(
        "Fig. 4 — CMT-bone execution profile "
        "(8 ranks, i5-2500 model, merged over ranks)\n"
        + flat_profile(merged)
    )
    report("Partial call graph:\n" + call_graph([r.profiler for r in results]))

    # Claim 1: the derivative kernel dominates.
    assert dominant_region(results) == "ax_"
    # Claim 2: the Fig. 4 routines are all present in the profile.
    assert {"ax_", "full2face_cmt", "gs_op_"} <= set(merged)
    # Claim 3: ax_ takes the majority of the leaf compute time, with a
    # comfortable margin over the next region (the paper shows ~2x+).
    leafs = sorted(
        (s.self_time, name) for name, s in merged.items()
        if s.self_time > 0
    )
    top_time, top_name = leafs[-1]
    second_time, _ = leafs[-2]
    assert top_name == "ax_"
    assert top_time > 1.5 * second_time
