"""Ablation — interconnect topology sensitivity of the face exchange.

The paper's co-design pitch includes evaluating "candidate exascale
architectures" whose networks differ structurally, not just in rates.
CMT-bone's nearest-neighbour exchange maps a 3-D processor grid onto
the physical network: on a matching 3-D torus every face message is a
single hop, while on a flat/fat-tree network placement does not matter.

Checked claims: on a hop-sensitive torus whose shape matches the
processor grid, the mean hop count of actual CMT-bone traffic is ~1;
random rank placement (shuffled torus coordinates) strictly increases
hop-weighted traffic; exchange time grows when hop latency is made
expensive, but only on the mismatched placement.
"""

import numpy as np
from dataclasses import replace

from repro.analysis import hop_weighted_bytes, render_table
from repro.core import CMTBoneConfig, run_cmtbone
from repro.mpi import Runtime
from repro.perfmodel import MachineModel, TorusTopology

PROC = (4, 4, 2)
P = 32


class ShuffledTorus(TorusTopology):
    """A torus with a deterministic random rank placement."""

    def __init__(self, shape, seed=0):
        object.__setattr__(self, "shape", shape)
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.nranks)
        object.__setattr__(self, "_perm", perm)

    def hops(self, src: int, dst: int) -> int:
        return super().hops(int(self._perm[src]), int(self._perm[dst]))


def _trace_run(topology):
    base = MachineModel.preset("compton")
    machine = base.with_network(
        replace(base.network, topology=topology, hop_latency=0.5e-6)
    )
    config = CMTBoneConfig(
        n=8, local_shape=(2, 2, 2), proc_shape=PROC, nsteps=3,
        work_mode="proxy", gs_method="pairwise", monitor_every=0,
    )
    runtime = Runtime(nranks=P, machine=machine, trace_messages=True)
    results = runtime.run(run_cmtbone, args=(config,))
    step_time = max(r.vtime_total for r in results) / config.nsteps
    return runtime.trace, step_time


def test_topology_ablation(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    aligned = TorusTopology(shape=PROC)
    shuffled = ShuffledTorus(shape=PROC, seed=11)

    trace_a, t_aligned = _trace_run(aligned)
    trace_s, t_shuffled = _trace_run(shuffled)

    hwb_aligned = hop_weighted_bytes(trace_a, aligned)
    hwb_shuffled = hop_weighted_bytes(trace_s, shuffled)
    mean_hops_aligned = hwb_aligned / max(trace_a.total_bytes, 1)
    mean_hops_shuffled = hwb_shuffled / max(trace_s.total_bytes, 1)

    report(
        "Ablation — rank placement on a 4x4x2 torus "
        "(CMT-bone face exchange, hop latency 0.5us)\n"
        + render_table(
            ["placement", "step time (s)", "bytes x hops",
             "mean hops/byte"],
            [
                ("grid-aligned", t_aligned, hwb_aligned,
                 mean_hops_aligned),
                ("random shuffle", t_shuffled, hwb_shuffled,
                 mean_hops_shuffled),
            ],
            floatfmt="{:.4g}",
        )
        + "\nNearest-neighbour traffic rides single links when the "
        "processor grid matches the torus;\nrandom placement multiplies "
        "the network load — the locality story behind topology-aware\n"
        "job placement on torus machines (BG/Q-class, Section III-A's "
        "scaling host)."
    )

    # Aligned placement: face messages are single-hop (plus the odd
    # collective); shuffled placement strictly worse on both metrics.
    assert mean_hops_aligned < 1.5
    assert mean_hops_shuffled > 1.5 * mean_hops_aligned
    assert t_shuffled > t_aligned
