"""Ablation — the auto-tuner's decision flips with the problem setup.

Section VI: "While this routine [crystal router] has not been used in
any of our CMT-bone test runs with different system and problem sizes,
as new kernels get added to the mini-app and the problem setup
changes, it is possible that crystal router may be used instead of
pairwise exchange.  This observation is of importance to both
performance optimization and performance modeling efforts."

This ablation makes the crossover explicit: for the C0 (Nekbone-style)
numbering, shrink the per-rank problem until the 26 neighbour messages
are tiny and per-message overhead dominates — the log2(P)-message
crystal router then beats pairwise, and the auto-tuner switches.

Checked claims: the winner is setup-dependent (both methods win
somewhere in the sweep); crystal wins at the small end, pairwise at
the large end; the auto-tuner's pick always matches the measured
minimum.
"""


from repro.analysis import render_table
from repro.gs import choose_method, gs_setup
from repro.mesh import BoxMesh, Partition, continuous_numbering
from repro.mpi import Runtime
from repro.perfmodel import MachineModel

P = 27
PROC = (3, 3, 3)
#: (N, local elements) from "tiny messages" to "fat messages".
SWEEP = [(3, (1, 1, 1)), (5, (1, 1, 1)), (8, (2, 2, 2)), (10, (3, 3, 3))]


def _tune(n, local):
    mesh = BoxMesh(
        shape=tuple(a * b for a, b in zip(PROC, local)), n=n
    )
    part = Partition(mesh, proc_shape=PROC)

    def main(comm):
        handle = gs_setup(continuous_numbering(part, comm.rank), comm)
        timings = choose_method(
            handle, methods=["pairwise", "crystal"], trials=2
        )
        return handle.method, {m: t.avg for m, t in timings.items()}

    runtime = Runtime(nranks=P, machine=MachineModel.preset("compton"))
    return runtime.run(main)[0]


def test_autotune_crossover(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    winners = []
    for n, local in SWEEP:
        winner, avgs = _tune(n, local)
        winners.append(winner)
        rows.append((
            f"N={n}, local={local}",
            avgs["pairwise"], avgs["crystal"],
            avgs["crystal"] / avgs["pairwise"],
            winner,
        ))
        # The tuner's pick matches the measured minimum.
        assert winner == min(avgs, key=avgs.get)
    report(
        "Ablation — auto-tuner decision vs problem setup "
        f"(C0 numbering, P={P}, 26 neighbours)\n"
        + render_table(
            ["setup", "pairwise (s)", "crystal (s)", "ratio", "winner"],
            rows, floatfmt="{:.3e}",
        )
        + "\n(paper, Section VI: 'as ... the problem setup changes, it "
        "is possible that crystal router may be\nused instead of "
        "pairwise exchange')"
    )

    # The crossover exists: both methods win somewhere in the sweep.
    assert "crystal" in winners and "pairwise" in winners
    # Crystal at the small end, pairwise at the large end.
    assert winners[0] == "crystal"
    assert winners[-1] == "pairwise"
