"""Validation study — CMT-bone vs its parent application (Section VII).

The paper's declared next step: "extensive validation of the
relationship between CMT-bone and CMT-nek ... based on performance
metrics".  This benchmark runs the Barrett-style comparison on a
matched workload and reports the signature table + similarity scores,
then repeats it with the validation-driven calibration
(``exchange_fields=11``: the parent exchanges state + normal-flux +
wavespeed traces, not just state).

Checked claims: per-message sizes agree exactly (same DG face
numbering); the uncalibrated mini-app under-ships communication volume
by ~2x (the kind of "issue in the mini-app's representation" refs
[8]/[9] found for the Mantevo suite); calibration closes that gap and
raises the overall score.
"""

import pytest

from repro.core import CMTBoneConfig
from repro.validation import (
    cmtbone_signature,
    score,
    solver_signature,
    validation_report,
)

CONFIG = CMTBoneConfig(
    n=8, local_shape=(2, 2, 2), proc_shape=(2, 2, 2), nsteps=4,
    work_mode="real", gs_method="pairwise", monitor_every=1,
)


@pytest.fixture(scope="module")
def study():
    parent = solver_signature(CONFIG, nranks=8)
    base = cmtbone_signature(CONFIG, nranks=8)
    calibrated = cmtbone_signature(
        CONFIG.with_(exchange_fields=11), nranks=8
    )
    return parent, base, calibrated


def test_validation_study(benchmark, report, study):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    parent, base, calibrated = study
    s_base = score(base, parent)
    s_cal = score(calibrated, parent)

    report(
        "Validation — uncalibrated CMT-bone vs the CMT-nek stand-in\n"
        + validation_report(base, parent, s_base)
    )
    report(
        "Validation — calibrated (exchange_fields=11) CMT-bone\n"
        + validation_report(calibrated, parent, s_cal)
    )

    # Structural agreement: identical per-message sizes.
    assert s_base.message_size_ratio == pytest.approx(1.0)
    # The uncalibrated proxy under-ships volume ~2x...
    assert parent.total_message_bytes > 1.5 * base.total_message_bytes
    # ...which the calibration fixes...
    assert s_cal.comm_volume_ratio > 0.9
    # ...raising the overall similarity.
    assert s_cal.overall > s_base.overall
    assert s_cal.overall > 0.7


def test_dominant_phase_agreement(benchmark, study):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    parent, base, _ = study
    # Both applications spend their largest compute share in the
    # derivative kernel — the Fig. 4 claim, cross-validated.
    for sig in (parent, base):
        compute_phases = {
            p: f for p, f in sig.phase_fractions.items()
            if p in ("derivative", "surface", "update")
        }
        assert max(compute_phases, key=compute_phases.get) == "derivative"
