"""Fig. 5 — optimized (loop-fused/unrolled) derivative kernel counters.

Paper (Opteron 6378, N=5, Nel=1563, 1000 steps, PAPI):

    dudt: 4.89 s   1,158,978,395 inst   762,267,174 cycles
    dudr: 8.60 s   2,402,189,302 inst   1,355,354,404 cycles
    duds: 9.45 s   2,595,078,699 inst   1,468,462,190 cycles

Reproduction: the analytic counter model prints the same three rows
(instructions/cycles land within 2% by construction — the model's
coefficients are calibrated here and *reused* for every other N/Nel in
the sweeps); wall-clock timing of the real numpy ``fused`` kernels
supplies the pytest-benchmark measurement.  Checked claims: modelled
counters match, and the paper's runtime ordering dudt < dudr < duds
holds for the modelled times.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.kernels import derivative_matrix, kernel_cost
from repro.kernels import derivatives as dk
from repro.perfmodel import MachineModel

PAPER_N, PAPER_NEL, PAPER_STEPS = 5, 1563, 1000
PAPER = {  # direction -> (runtime s, instructions, cycles)
    "t": (4.89, 1_158_978_395, 762_267_174),
    "r": (8.60, 2_402_189_302, 1_355_354_404),
    "s": (9.45, 2_595_078_699, 1_468_462_190),
}

#: Wall-benchmark size (full 1563x1000 would take minutes in numpy).
BENCH_NEL = 256


@pytest.fixture(scope="module")
def modelled_rows():
    machine = MachineModel.preset("opteron6378")
    rows = {}
    for d in ("t", "r", "s"):
        rows[d] = kernel_cost(
            d, "fused", PAPER_N, PAPER_NEL, steps=PAPER_STEPS,
            machine=machine,
        )
    return rows


@pytest.mark.parametrize("direction", ["t", "r", "s"])
def test_fig05_fused_kernel_wall(benchmark, direction):
    """Wall time of the real fused kernel at the paper's N."""
    dmat = np.asarray(derivative_matrix(PAPER_N))
    u = np.random.default_rng(1).standard_normal(
        (BENCH_NEL, PAPER_N, PAPER_N, PAPER_N)
    )
    benchmark(dk.derivative, u, dmat, direction, "fused")


def test_fig05_modelled_counters(benchmark, report, modelled_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for d in ("t", "r", "s"):
        c = modelled_rows[d]
        p_rt, p_inst, p_cyc = PAPER[d]
        rows.append((
            f"dud{d}", c.seconds, c.instructions, c.cycles,
            p_rt, p_inst, p_cyc,
        ))
    report(
        "Fig. 5 — optimized derivative kernel "
        f"(N={PAPER_N}, Nel={PAPER_NEL}, {PAPER_STEPS} steps, "
        "Opteron 6378 model)\n"
        + render_table(
            ["kernel", "model s", "model inst", "model cycles",
             "paper s", "paper inst", "paper cycles"],
            rows, floatfmt="{:.4g}",
        )
        + "\n(note: the paper's runtime column is inconsistent with its "
        "own cycle counts at 2.4 GHz; see EXPERIMENTS.md —\n"
        "instructions/cycles and all ratios are the reproduction target)"
    )

    # Claim 1: modelled counters within 2% of the PAPI measurements.
    for d in ("t", "r", "s"):
        c = modelled_rows[d]
        _, p_inst, p_cyc = PAPER[d]
        assert c.instructions == pytest.approx(p_inst, rel=0.02)
        assert c.cycles == pytest.approx(p_cyc, rel=0.02)

    # Claim 2: runtime ordering dudt < dudr < duds as in Fig. 5.
    assert (
        modelled_rows["t"].seconds
        < modelled_rows["r"].seconds
        < modelled_rows["s"].seconds
    )
