"""Ablation — cost of over-integration dealiasing in the solver.

Section V: the small-matrix kernel serves "for computing partial
derivatives in the spectral element solver and for dealiasing
reference elements, where an element is first mapped to a finer mesh
and later mapped back to the regular mesh".  This ablation measures
what that map/map-back pair adds to a timestep, in both modelled
virtual time and real numpy wall time, across N.

Checked claims: dealiasing costs extra (never free); the relative
overhead is bounded (the 3/2-rule multiplies volume work by ~(3/2)^3
on the flux evaluation and adds 6 tensor applications); physics
invariants hold in both modes (enforced by the test suite, re-checked
cheaply here).
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.kernels.dealias import dealias_flops, roundtrip
from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import CMTSolver, SolverConfig, uniform_state

NS = [5, 8, 12]


def _step_time(n, dealias):
    mesh = BoxMesh(shape=(4, 2, 2), n=n)
    part = Partition(mesh, proc_shape=(2, 1, 1))

    def main(comm):
        solver = CMTSolver(
            comm, part,
            config=SolverConfig(gs_method="pairwise", dealias=dealias),
        )
        st = uniform_state(part.nel_local, n, vel=(0.3, 0.0, 0.0))
        t0 = comm.clock.now
        solver.run(st, nsteps=3, dt=1e-3)
        return (comm.clock.now - t0) / 3.0

    return max(Runtime(nranks=2).run(main))


@pytest.mark.parametrize("n", NS)
def test_dealias_roundtrip_wall(benchmark, n):
    """Wall cost of one map-to-fine + map-back pair."""
    u = np.random.default_rng(n).standard_normal((32, n, n, n))
    benchmark(roundtrip, u, n)


def test_dealias_ablation_model(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for n in NS:
        t_std = _step_time(n, dealias=False)
        t_dea = _step_time(n, dealias=True)
        rows.append((
            n, t_std, t_dea, t_dea / t_std,
            dealias_flops(n, nel=16),
        ))
    report(
        "Ablation — modelled per-step cost with/without 3/2-rule "
        "dealiasing (16 elements, 2 ranks)\n"
        + render_table(
            ["N", "standard (s)", "dealiased (s)", "overhead x",
             "dealias flops/field"],
            rows, floatfmt="{:.4g}",
        )
    )
    for _, t_std, t_dea, ratio, _ in rows:
        assert t_dea > t_std          # never free
        assert ratio < 8.0            # bounded overhead
