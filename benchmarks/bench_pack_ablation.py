"""Ablation — packed (gs_op_many) vs per-field face exchanges.

CMT-nek ships five conserved-variable traces per RK stage.  gslib's
vector interface packs them into one message per neighbour; this
ablation measures the win on the mini-app across network regimes.

Checked claims: packing is never slower; its advantage grows as
per-message cost (latency/overhead) grows — the co-design signal that
message *count*, not just volume, matters on latency-bound networks.
"""

from dataclasses import replace


from repro.analysis import render_table
from repro.core import CMTBoneConfig, run_cmtbone
from repro.mpi import Runtime
from repro.perfmodel import MachineModel


def _step_time(pack, machine):
    config = CMTBoneConfig(
        n=8,
        local_shape=(2, 2, 2),
        proc_shape=(2, 2, 2),
        nsteps=5,
        work_mode="proxy",
        gs_method="pairwise",
        pack_fields=pack,
    )
    runtime = Runtime(nranks=8, machine=machine)
    results = runtime.run(run_cmtbone, args=(config,))
    return max(r.vtime_total for r in results) / config.nsteps


def test_pack_ablation(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = MachineModel.preset("compton")
    slow_msgs = base.with_network(
        replace(base.network,
                latency=base.network.latency * 10,
                o_send=base.network.o_send * 10,
                o_recv=base.network.o_recv * 10)
    )
    rows = []
    gains = {}
    for name, machine in (("compton", base), ("10x msg cost", slow_msgs)):
        t_sep = _step_time(False, machine)
        t_pack = _step_time(True, machine)
        gains[name] = t_sep / t_pack
        rows.append((name, t_sep, t_pack, t_sep / t_pack))
    report(
        "Ablation — per-field vs packed (gs_op_many) face exchange, "
        "CMT-bone step (8 ranks, N=8, 5 fields)\n"
        + render_table(
            ["network", "per-field (s)", "packed (s)", "speedup"],
            rows, floatfmt="{:.4g}",
        )
    )
    assert all(g >= 1.0 for g in gains.values())
    # Packing matters more when messages are expensive.
    assert gains["10x msg cost"] > gains["compton"]
