"""Fig. 8 — per-rank percentage of execution time spent in MPI.

Paper: an mpiP plot of "% time spent in MPI calls across all MPI
processes" showing substantial rank-to-rank variation — the load-
imbalance observation that motivates the MPI_Wait discussion.

Reproduction: a 64-rank CMT-bone run (proxy work, 20% compute-load
jitter — see DESIGN.md's substitution notes) profiled by the built-in
mpiP-style layer.  Checked claims: every rank spends a nonzero but
minority share of time in MPI, and the spread across ranks is real
(max noticeably above min).
"""


from repro.analysis import mpi_fraction_report, summarize_fractions


def test_fig08_mpi_fraction_per_rank(benchmark, report, mpip_run):
    runtime, results, config = mpip_run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    profile = runtime.job_profile()

    report(
        "Fig. 8 — % time in MPI per rank "
        f"(P={profile.nranks}, N={config.n}, "
        f"{config.nel_local} el/rank, imbalance={config.compute_imbalance})\n"
        + mpi_fraction_report(profile)
    )

    mean, mn, mx, imb = summarize_fractions(profile)
    fractions = profile.mpi_fractions()

    # Claim 1: every rank spends some, but not most, time in MPI.
    assert all(0.0 < f < 0.6 for f in fractions)
    # Claim 2: visible rank-to-rank variation (the Fig. 8 point).
    assert mx > 1.15 * mn
    assert imb > 1.05
    # Claim 3: the mean sits in a plausible band for a compute-heavy
    # mini-app on a healthy network (paper's bars: roughly 10-40%).
    assert 2.0 < mean < 50.0
