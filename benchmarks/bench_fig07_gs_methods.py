"""Fig. 7 — gather-scatter method comparison, CMT-bone vs Nekbone.

Paper setup (verbatim):

    Number of processors: 256        Processor Distribution = 8, 8, 4
    Elements per process = 100       Element Distribution   = 40, 40, 16
    Total elements = 25600           Local Element Distrib. = 5, 5, 4
    Gridpoints per element = 10      Dimensions = 3

on Compton (Sandy Bridge + Mellanox QDR).  Paper results (seconds,
single exchange, avg/min/max over ranks):

    CMT-bone  pairwise exchange  0.000319  0.000244  0.000354
    CMT-bone  crystal router     0.000800  0.000789  0.000808
    Nekbone   pairwise exchange  0.000639  0.000558  0.000686
    Nekbone   crystal router     0.000664  0.000657  0.000670

and: "All_reduce is too expensive for both the mini-apps", CMT-bone
selects pairwise, Nekbone's crystal router is competitive (the run
shown uses it).

Reproduction: the exact problem setup on the simulated Compton model.
Checked shape claims: (a) pairwise beats crystal for CMT-bone by a
clear factor; (b) the two methods are much closer for Nekbone;
(c) allreduce is the most expensive method for both; (d) magnitudes
land within an order of magnitude of the paper's numbers.
"""

import pytest

from repro.core import CMTBoneConfig, NekboneConfig, fig7_table
from repro.core.cmtbone import CMTBone
from repro.core.nekbone import Nekbone
from repro.mpi import Runtime
from repro.perfmodel import MachineModel

PAPER = {
    ("CMT-bone", "pairwise"): (0.000318934, 0.000244498, 0.000353503),
    ("CMT-bone", "crystal"): (0.000799977, 0.000788808, 0.000808311),
    ("Nekbone", "pairwise"): (0.000638981, 0.000557685, 0.000685811),
    ("Nekbone", "crystal"): (0.000663779, 0.000657296, 0.000669909),
}


@pytest.fixture(scope="module")
def fig7_results():
    cmt_cfg = CMTBoneConfig.fig7()
    nek_cfg = NekboneConfig.fig7()

    def main(comm):
        cmt = CMTBone(comm, cmt_cfg)
        nek = Nekbone(comm, nek_cfg)
        return {
            "cmt": cmt.autotune,
            "cmt_method": cmt.handle.method,
            "nek": nek.autotune,
            "nek_method": nek.handle.method,
            "setup": cmt.partition.describe(),
        }

    runtime = Runtime(nranks=256, machine=MachineModel.preset("compton"))
    return runtime.run(main)[0]


def test_fig07_gs_method_comparison(benchmark, report, fig7_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    r = fig7_results
    report("Fig. 7 setup\n" + r["setup"])
    report(
        "Fig. 7 — exchange-method timing (modelled Compton network)\n"
        + fig7_table(r["cmt"], r["nek"],
                     methods=("pairwise", "crystal", "allreduce"))
    )
    paper_rows = "\n".join(
        f"  {app:<9s} {m:<9s} avg={v[0]:.6f} min={v[1]:.6f} max={v[2]:.6f}"
        for (app, m), v in PAPER.items()
    )
    report("Paper's measured values (Compton hardware):\n" + paper_rows)

    cmt, nek = r["cmt"], r["nek"]

    # (a) pairwise clearly beats crystal for CMT-bone (paper: 2.5x).
    assert cmt["pairwise"].avg < cmt["crystal"].avg
    assert cmt["crystal"].avg / cmt["pairwise"].avg > 1.5
    assert r["cmt_method"] == "pairwise"

    # (b) the gap is much smaller for Nekbone (paper: 1.04x).
    nek_ratio = nek["crystal"].avg / nek["pairwise"].avg
    cmt_ratio = cmt["crystal"].avg / cmt["pairwise"].avg
    assert nek_ratio < cmt_ratio
    assert nek_ratio < 1.6

    # (c) allreduce is the worst method for both mini-apps.
    for t in (cmt, nek):
        assert t["allreduce"].avg > t["pairwise"].avg
        assert t["allreduce"].avg > t["crystal"].avg

    # (d) magnitudes within ~an order of magnitude of the paper.
    for (app, method), (p_avg, _, _) in PAPER.items():
        ours = (cmt if app == "CMT-bone" else nek)[method].avg
        assert p_avg / 10 < ours < p_avg * 10, (app, method, ours, p_avg)


def test_fig07_statistics_consistent(benchmark, fig7_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for app in ("cmt", "nek"):
        for t in fig7_results[app].values():
            assert 0 < t.mn <= t.avg <= t.mx
