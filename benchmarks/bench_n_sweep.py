"""Ablation — derivative-kernel cost across polynomial orders.

Section V: "The elements and derivative operator matrices are fairly
small, with N ranging between 5 and 25 ... The derivative calculation
is an O(N^4) operation."

This sweep measures the real fused kernel across the paper's full N
range and checks the O(N^4) flop scaling plus the modelled L1
spill-over for the strided directions (the paper's duds cache-miss
explanation becomes visible as an efficiency knee as N grows on the
48 KB-L1 Opteron model).
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.kernels import (
    derivative_matrix,
    kernel_cost,
    working_set_bytes,
)
from repro.kernels import derivatives as dk
from repro.perfmodel import MachineModel

NS = [5, 10, 15, 20, 25]
POINTS_BUDGET = 200_000  # keep per-N wall work comparable


@pytest.mark.parametrize("n", NS)
def test_n_sweep_fused_wall(benchmark, n):
    nel = max(1, POINTS_BUDGET // n**3)
    dmat = np.asarray(derivative_matrix(n))
    u = np.random.default_rng(n).standard_normal((nel, n, n, n))
    benchmark(dk.dudr, u, dmat)


def test_n_sweep_model_table(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    machine = MachineModel.preset("opteron6378")
    rows = []
    for n in NS:
        costs = {
            d: kernel_cost(d, "fused", n, 100, machine=machine)
            for d in "rst"
        }
        total = sum(c.seconds for c in costs.values())
        rows.append((
            n,
            total,
            total / n**4 * 1e9,
            working_set_bytes(n),
            "yes" if working_set_bytes(n) > machine.cpu.l1_dcache else "no",
        ))
    report(
        "Ablation — modelled derivative cost vs N (Nel=100, all three "
        "directions, Opteron 6378)\n"
        + render_table(
            ["N", "time (s)", "time/N^4 (ns)", "working set (B)",
             "spills 48KB L1"],
            rows, floatfmt="{:.4g}",
        )
    )

    # O(N^4): normalized cost per N^4 varies by < the L1-penalty factor.
    normalized = [r[2] for r in rows]
    assert max(normalized) / min(normalized) < 1.3
    # The L1 spill must appear inside the paper's N range (5..25).
    spills = [r[4] for r in rows]
    assert "no" in spills and "yes" in spills


def test_n_sweep_wall_scaling(benchmark, report):
    """Measured flop rate is roughly N-independent for fused kernels."""
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for n in NS:
        nel = max(1, POINTS_BUDGET // n**3)
        dmat = np.asarray(derivative_matrix(n))
        u = np.random.default_rng(n).standard_normal((nel, n, n, n))
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            dk.dudr(u, dmat)
            best = min(best, time.perf_counter() - t0)
        gflops = dk.flops(n, nel) / best / 1e9
        rows.append((n, nel, best * 1e3, gflops))
    report(
        "Measured fused dudr across N (constant point budget)\n"
        + render_table(
            ["N", "Nel", "time (ms)", "GF/s"], rows, floatfmt="{:.3g}"
        )
    )
    rates = [r[3] for r in rows]
    # Throughput grows with N (bigger GEMMs amortize call overhead);
    # it must never collapse across the sweep.
    assert max(rates) / min(rates) < 50
