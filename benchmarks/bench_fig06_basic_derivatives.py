"""Fig. 6 — basic (no fusion/unroll) derivative kernel + speedups.

Paper (same setup as Fig. 5):

    dudt basic: 11.3 s   3,219,865,483 inst   1,695,229,754 cycles
    dudr basic:  8.89 s  2,428,697,316 inst   1,394,120,803 cycles
    duds basic:  "no noticeable improvement over the basic
                  implementation"

and Section V's headline: loop optimization makes dudt 2.31x and dudr
1.03x faster, duds unchanged.

Reproduction: modelled counters for the ``basic`` variant plus the
fused/basic speedup table; wall timing of the real numpy ``basic``
kernels (per-pencil loops) for pytest-benchmark.  Checked claims:
counters within 2%, and the modelled speedups land on 2.31x / 1.03x /
1.00x within tolerance.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.kernels import derivative_matrix, kernel_cost, speedup
from repro.kernels import derivatives as dk
from repro.perfmodel import MachineModel

PAPER_N, PAPER_NEL, PAPER_STEPS = 5, 1563, 1000
PAPER_BASIC = {  # direction -> (runtime s, instructions, cycles)
    "t": (11.3, 3_219_865_483, 1_695_229_754),
    "r": (8.89, 2_428_697_316, 1_394_120_803),
}
PAPER_SPEEDUP = {"t": 2.31, "r": 1.03, "s": 1.00}
BENCH_NEL = 64  # basic variant loops in Python: keep the batch modest


@pytest.mark.parametrize("direction", ["t", "r", "s"])
def test_fig06_basic_kernel_wall(benchmark, direction):
    dmat = np.asarray(derivative_matrix(PAPER_N))
    u = np.random.default_rng(2).standard_normal(
        (BENCH_NEL, PAPER_N, PAPER_N, PAPER_N)
    )
    benchmark(dk.derivative, u, dmat, direction, "basic")


def test_fig06_modelled_counters_and_speedup(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    machine = MachineModel.preset("opteron6378")

    rows = []
    for d in ("t", "r"):
        c = kernel_cost(d, "basic", PAPER_N, PAPER_NEL,
                        steps=PAPER_STEPS, machine=machine)
        p_rt, p_inst, p_cyc = PAPER_BASIC[d]
        rows.append((f"dud{d}", c.seconds, c.instructions, c.cycles,
                     p_rt, p_inst, p_cyc))
    report(
        "Fig. 6 — basic derivative kernel "
        f"(N={PAPER_N}, Nel={PAPER_NEL}, {PAPER_STEPS} steps)\n"
        + render_table(
            ["kernel", "model s", "model inst", "model cycles",
             "paper s", "paper inst", "paper cycles"],
            rows, floatfmt="{:.4g}",
        )
    )

    srows = []
    for d in ("t", "r", "s"):
        s = speedup(d, PAPER_N, PAPER_NEL, machine=machine)
        srows.append((f"dud{d}", s, PAPER_SPEEDUP[d]))
    report(
        "Section V speedups from loop fusion/unroll "
        "(basic time / optimized time)\n"
        + render_table(
            ["kernel", "modelled speedup", "paper speedup"],
            srows, floatfmt="{:.3g}",
        )
    )

    # Claim 1: counters within 2% of the published PAPI numbers.
    for d in ("t", "r"):
        c = kernel_cost(d, "basic", PAPER_N, PAPER_NEL,
                        steps=PAPER_STEPS, machine=machine)
        _, p_inst, p_cyc = PAPER_BASIC[d]
        assert c.instructions == pytest.approx(p_inst, rel=0.02)
        assert c.cycles == pytest.approx(p_cyc, rel=0.02)

    # Claim 2: speedups — dudt large, dudr marginal, duds none.
    assert speedup("t", PAPER_N, PAPER_NEL) == pytest.approx(2.31, rel=0.08)
    assert speedup("r", PAPER_N, PAPER_NEL) == pytest.approx(1.03, abs=0.05)
    assert speedup("s", PAPER_N, PAPER_NEL) == pytest.approx(1.00, abs=0.02)


def test_fig06_wall_speedup_direction(benchmark, report):
    """The real numpy kernels show the same *direction* of the effect.

    The mechanism differs (Python-loop overhead removal vs Fortran
    vectorization) so magnitudes are larger, but fused must never lose
    to basic, and duds must benefit least among fusable directions at
    large N (its middle-index contraction stays a strided batch GEMM).
    """
    import time

    n, nel = 16, 64
    dmat = np.asarray(derivative_matrix(n))
    u = np.random.default_rng(3).standard_normal((nel, n, n, n))

    def best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    walls = {}
    for d in ("t", "r", "s"):
        tb = best_of(lambda d=d: dk.derivative(u, dmat, d, "basic"))
        tf = best_of(lambda d=d: dk.derivative(u, dmat, d, "fused"))
        walls[d] = (tb, tf, tb / tf)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report(
        f"Measured numpy wall speedups (N={n}, Nel={nel}; mechanism "
        "differs from Fortran, see module docstring)\n"
        + render_table(
            ["kernel", "basic s", "fused s", "speedup"],
            [(f"dud{d}",) + walls[d] for d in ("t", "r", "s")],
            floatfmt="{:.3g}",
        )
    )
    for d in ("t", "r", "s"):
        assert walls[d][2] > 1.0  # fused never loses
