"""Ablation — load imbalance drives the MPI_Wait story of Figs. 8-9.

The paper reads its Fig. 9 MPI_Wait dominance as "the need for better
load balancing in the application".  This ablation makes that causal
link explicit: sweep the injected compute-load jitter from 0 to 40%
and watch (a) the MPI_Wait share of total MPI time and (b) the
per-rank MPI-fraction spread grow monotonically with imbalance.
"""

import numpy as np

from repro.analysis import render_table, summarize_fractions, wait_dominance
from repro.core import CMTBoneConfig, run_cmtbone
from repro.mpi import Runtime
from repro.perfmodel import MachineModel

IMBALANCES = [0.0, 0.1, 0.2, 0.4]


def _run(imbalance):
    config = CMTBoneConfig(
        n=8,
        local_shape=(2, 2, 2),
        proc_shape=(2, 2, 2),
        nsteps=6,
        work_mode="proxy",
        gs_method="pairwise",
        compute_imbalance=imbalance,
    )
    runtime = Runtime(nranks=8, machine=MachineModel.preset("compton"))
    runtime.run(run_cmtbone, args=(config,))
    return runtime.job_profile()


def test_imbalance_ablation(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    wait_shares = []
    spreads = []
    for imb in IMBALANCES:
        profile = _run(imb)
        op, share = wait_dominance(profile)
        mean, mn, mx, ratio = summarize_fractions(profile)
        wait_time = profile.by_op().get("MPI_Wait", 0.0)
        rows.append((imb, op, share, wait_time, mean, mx - mn))
        wait_shares.append(share if op == "MPI_Wait"
                           else profile.by_op().get("MPI_Wait", 0.0)
                           / max(sum(profile.by_op().values()), 1e-30))
        spreads.append(mx - mn)
    report(
        "Ablation — MPI_Wait share and per-rank MPI%% spread vs "
        "injected load imbalance (P=8)\n"
        + render_table(
            ["imbalance", "top MPI op", "top share", "MPI_Wait (s)",
             "MPI % mean", "MPI % spread"],
            rows, floatfmt="{:.3g}",
        )
    )

    # Wait share and spread grow monotonically with imbalance.
    assert all(np.diff(wait_shares) > -1e-9)
    assert wait_shares[-1] > wait_shares[0] + 0.1
    assert spreads[-1] > spreads[0]
    # At strong imbalance, MPI_Wait dominates (the Fig. 9 observation).
    profile = _run(0.4)
    op, share = wait_dominance(profile)
    assert op == "MPI_Wait" and share > 0.4
