"""Ablation — end-to-end impact of the kernel variant on the mini-app.

Section V studies the derivative kernel in isolation; this ablation
closes the loop the paper implies: how much does the loop-fusion
choice change a whole CMT-bone timestep?  Since the derivative kernel
is ~half the step (Fig. 4), Amdahl caps the app-level win well below
the kernel-level 2.31x.

Checked claims: the fused app-level step is faster than the basic one
(modelled), and the speedup is smaller than the best kernel-level
speedup — the "mini-apps are guidelines, not optimization targets"
point of Section II.
"""


from repro.analysis import render_table
from repro.core import CMTBoneConfig, run_cmtbone
from repro.kernels import counters
from repro.mpi import Runtime
from repro.perfmodel import MachineModel


def _step_time(variant):
    config = CMTBoneConfig(
        n=10,
        local_shape=(2, 2, 2),
        proc_shape=(2, 2, 2),
        nsteps=4,
        work_mode="proxy",
        gs_method="pairwise",
        kernel_variant=variant,
    )
    runtime = Runtime(nranks=8, machine=MachineModel.preset("opteron6378"))
    results = runtime.run(run_cmtbone, args=(config,))
    return max(r.vtime_total for r in results) / config.nsteps


def test_variant_ablation(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    t_fused = _step_time("fused")
    t_basic = _step_time("basic")
    app_speedup = t_basic / t_fused
    kernel_speedups = {
        d: counters.speedup(d, 10, 8) for d in "rst"
    }
    best_kernel = max(kernel_speedups.values())
    report(
        "Ablation — app-level impact of the kernel variant "
        "(CMT-bone step, 8 ranks, N=10)\n"
        + render_table(
            ["variant", "step time (s)"],
            [("basic", t_basic), ("fused", t_fused)],
            floatfmt="{:.4g}",
        )
        + f"\napp-level speedup: {app_speedup:.2f}x   "
        f"best kernel-level speedup: {best_kernel:.2f}x (Amdahl gap)"
    )
    assert t_fused < t_basic
    assert 1.0 < app_speedup < best_kernel
