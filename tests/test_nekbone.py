"""The Nekbone comparator mini-app: operator, CG, communication."""

import numpy as np
import pytest

from repro.core import NekboneConfig, run_nekbone
from repro.core.nekbone import Nekbone
from repro.gs import gs_op
from repro.mpi import SUM, Runtime

SMALL = NekboneConfig(
    n=5, local_shape=(2, 2, 1), proc_shape=(2, 1, 1),
    cg_iterations=200, gs_method="pairwise",
)


class TestConfig:
    def test_fig7(self):
        cfg = NekboneConfig.fig7()
        assert cfg.n == 10 and cfg.nel_local == 100
        assert cfg.build_partition(256).mesh.nelgt == 25600

    def test_validation(self):
        with pytest.raises(ValueError):
            NekboneConfig(work_mode="nope")


class TestOperator:
    def _build(self, comm):
        return Nekbone(comm, SMALL)

    def test_symmetry_on_continuous_vectors(self):
        """<u, Av> == <Au, v> for continuous (assembled) u, v."""

        def main(comm):
            nb = self._build(comm)
            rng = np.random.default_rng(10 + comm.rank)
            mk = lambda: gs_op(
                nb.handle,
                rng.standard_normal(nb.handle.shape) * nb._inv_mult,
                op=SUM,
            )
            u, v = mk(), mk()
            return nb.dot(u, nb.ax(v)), nb.dot(v, nb.ax(u))

        res = Runtime(nranks=2).run(main)
        d1, d2 = res[0]
        assert d1 == pytest.approx(d2, rel=1e-10)

    def test_positive_definite_with_mass(self):
        def main(comm):
            nb = self._build(comm)
            rng = np.random.default_rng(3)
            u = gs_op(
                nb.handle,
                rng.standard_normal(nb.handle.shape) * nb._inv_mult,
                op=SUM,
            )
            return nb.dot(u, nb.ax(u))

        assert Runtime(nranks=2).run(main)[0] > 0

    def test_constant_in_nullspace_of_stiffness(self):
        """Pure stiffness (h2=0) annihilates constants on a periodic box."""
        cfg = SMALL.with_(h2=0.0)

        def main(comm):
            nb = Nekbone(comm, cfg)
            u = np.ones(nb.handle.shape)
            w = nb.ax(u)
            return float(np.max(np.abs(w)))

        res = Runtime(nranks=2).run(main)
        assert max(res) < 1e-10

    def test_mass_term_scales(self):
        """With h1=0, ax is the (assembled) diagonal mass matrix."""
        cfg = SMALL.with_(h1=0.0, h2=2.0)

        def main(comm):
            nb = Nekbone(comm, cfg)
            u = np.ones(nb.handle.shape)
            w = nb.ax(u)
            # Total "mass" = 2 * volume of the global box = 2 * 1.
            return nb.dot(u, w)

        res = Runtime(nranks=2).run(main)
        assert res[0] == pytest.approx(2.0, rel=1e-10)


class TestCGSolve:
    def test_manufactured_solution_recovered(self):
        def main(comm):
            return run_nekbone(comm, SMALL)

        res = Runtime(nranks=2).run(main)
        for r in res:
            assert r.solution_error < 1e-7
            assert r.iterations < SMALL.cg_iterations
            # Residual history is monotone-ish downward overall.
            assert r.residual_history[-1] < 1e-2 * r.residual_history[0]

    def test_profile_regions(self):
        def main(comm):
            return run_nekbone(comm, SMALL)

        res = Runtime(nranks=2).run(main)
        names = set(res[0].profiler.stats)
        assert {"ax_local", "gs_op_", "glsc3", "cg_iteration",
                "gs_setup"} <= names

    def test_proxy_mode_runs_fixed_iterations(self):
        cfg = SMALL.with_(work_mode="proxy", cg_iterations=10)

        def main(comm):
            return run_nekbone(comm, cfg)

        res = Runtime(nranks=2).run(main)
        assert res[0].iterations == 10
        assert res[0].solution_error is None

    def test_autotune_runs(self):
        cfg = SMALL.with_(gs_method=None, cg_iterations=5,
                          work_mode="proxy")

        def main(comm):
            return run_nekbone(comm, cfg)

        res = Runtime(nranks=2).run(main)
        assert res[0].autotune is not None
        assert res[0].chosen_method in ("pairwise", "crystal", "allreduce")


class TestCommunicationStructure:
    def test_more_neighbors_than_cmtbone(self):
        """C0 numbering couples corners/edges: up to 26 neighbours."""
        from repro.core import CMTBoneConfig
        from repro.core.cmtbone import CMTBone

        nb_cfg = NekboneConfig(
            n=4, local_shape=(1, 1, 1), proc_shape=(3, 3, 3),
            gs_method="pairwise", work_mode="proxy", cg_iterations=1,
        )
        cb_cfg = CMTBoneConfig(
            n=4, local_shape=(1, 1, 1), proc_shape=(3, 3, 3),
            gs_method="pairwise", work_mode="proxy", nsteps=1,
        )

        def main(comm):
            nb = Nekbone(comm, nb_cfg)
            cb = CMTBone(comm, cb_cfg)
            return len(nb.handle.neighbors), len(cb.handle.neighbors)

        res = Runtime(nranks=27).run(main)
        nekbone_n, cmtbone_n = res[0]
        assert nekbone_n == 26
        assert cmtbone_n == 6

    def test_dot_is_an_allreduce(self):
        def main(comm):
            return run_nekbone(comm, SMALL.with_(cg_iterations=3,
                                                 work_mode="proxy"))

        rt = Runtime(nranks=2)
        rt.run(main)
        ops = {r.op for r in rt.job_profile().aggregates()}
        assert "MPI_Allreduce" in ops
