"""Split-phase overlapped pipeline: correctness and accounting.

The two contracts of the overlap work (see docs/virtual-time.md,
"Overlap accounting"):

* physics under ``overlap=True`` is **bitwise identical** to the
  blocking schedule — checked here on raw gather-scatter exchanges,
  the CMT-bone mini-app, and the full multi-rank Sod shock tube;
* the modelled step time never increases, and communication hidden
  under interior compute is credited to ``hidden_comm_time`` instead
  of extending the step.
"""

import numpy as np
import pytest

from repro.core import CMTBoneConfig, run_cmtbone
from repro.gs import gs_op, gs_op_begin, gs_op_finish, gs_setup
from repro.mesh import BoxMesh, Partition
from repro.mesh.numbering import dg_face_numbering
from repro.mpi import MAX, SUM, Request, Runtime
from repro.mpi import testall as mpi_testall
from repro.mpi import waitall as mpi_waitall
from repro.perfmodel import MachineModel
from repro.solver import CMTSolver, ShockFilter, SolverConfig, from_primitives
from repro.solver.boundary import BoundarySpec
from repro.solver.riemann import SOD_LEFT, SOD_RIGHT


class TestWaitallTestall:
    def test_waitall_orders_payloads(self):
        def main(comm):
            reqs = [
                comm.irecv(source=(comm.rank + d) % comm.size, tag=d)
                for d in (1, 2)
            ]
            for d in (1, 2):
                comm.isend(
                    comm.rank * 10 + d,
                    dest=(comm.rank - d) % comm.size,
                    tag=d,
                )
            return Request.waitall(reqs)

        res = Runtime(nranks=3).run(main)
        for rank, payloads in enumerate(res):
            assert payloads == [
                ((rank + 1) % 3) * 10 + 1, ((rank + 2) % 3) * 10 + 2
            ]

    def test_testall_send_only(self):
        def main(comm):
            reqs = [comm.isend(1, dest=comm.rank)]
            comm.recv(source=comm.rank)
            return Request.testall(reqs) and mpi_testall(reqs)

        assert Runtime(nranks=1).run(main) == [True]

    def test_testall_incomplete_then_waitall(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1)
                before = req.test()  # may be False: nothing sent yet
                comm.send(None, dest=1)  # unblock the sender
                payload = mpi_waitall([req])[0]
                return before, payload, mpi_testall([req])
            comm.recv(source=0)
            comm.send("data", dest=0)
            return None

        before, payload, after = Runtime(nranks=2).run(main)[0]
        assert payload == "data"
        assert after is True


class TestBoundarySplit:
    def test_single_rank_all_interior(self):
        part = Partition(BoxMesh((4, 1, 1), n=4), (1, 1, 1))
        assert part.boundary_local_indices(0).size == 0
        assert list(part.interior_local_indices(0)) == [0, 1, 2, 3]

    def test_x_split_brick(self):
        part = Partition(BoxMesh((8, 1, 1), n=4), (2, 1, 1))
        assert list(part.boundary_local_indices(0)) == [0, 3]
        assert list(part.interior_local_indices(0)) == [1, 2]

    def test_mask_partitions_all_elements(self):
        part = Partition(BoxMesh((4, 4, 4), n=3), (2, 2, 1))
        mask = part.boundary_mask(0)
        assert mask.size == part.nel_local
        both = np.concatenate([
            part.boundary_local_indices(0), part.interior_local_indices(0)
        ])
        assert sorted(both) == list(range(part.nel_local))
        # z is uncut: boundary status must not depend on the z slab.
        lx, ly, lz = part.local_shape
        m3 = mask.reshape(lz, ly, lx)
        assert (m3 == m3[0]).all()

    def test_cut_faces_are_boundary(self):
        part = Partition(BoxMesh((4, 4, 4), n=3), (2, 2, 2))
        lx, ly, lz = part.local_shape
        m3 = part.boundary_mask(0).reshape(lz, ly, lx)
        assert m3[0].all() and m3[-1].all()      # z faces
        assert m3[:, 0].all() and m3[:, -1].all()  # y faces
        assert m3[:, :, 0].all() and m3[:, :, -1].all()  # x faces


MESH_GS = BoxMesh((4, 4, 2), n=4, periodic=(False, True, True))
PART_GS = Partition(MESH_GS, (2, 2, 1))


@pytest.mark.parametrize("method", ["pairwise", "crystal", "allreduce"])
def test_split_phase_matches_blocking(method):
    """gs_op_begin/finish == gs_op, bitwise, for every method."""

    def main(comm):
        gids = dg_face_numbering(PART_GS, comm.rank)
        handle = gs_setup(gids, comm)
        rng = np.random.default_rng(11 + comm.rank)
        u = rng.standard_normal(gids.shape)
        blocking_sum = gs_op(handle, u, SUM, method=method)
        blocking_max = gs_op(handle, u, MAX, method=method)
        ex_sum = gs_op_begin(handle, u, SUM, method=method)
        ex_max = gs_op_begin(handle, u, MAX, method=method, tag=7777)
        comm.compute(flops=1e6)  # overlapped work
        split_sum = gs_op_finish(ex_sum, u)
        split_max = gs_op_finish(ex_max)  # deferred condense from begin
        return (
            np.array_equal(blocking_sum, split_sum),
            np.array_equal(blocking_max, split_max),
        )

    res = Runtime(nranks=4).run(main)
    assert all(a and b for a, b in res)


def test_finish_twice_raises():
    def main(comm):
        gids = dg_face_numbering(PART_GS, comm.rank)
        handle = gs_setup(gids, comm)
        u = np.ones(gids.shape)
        ex = gs_op_begin(handle, u, SUM, method="pairwise")
        gs_op_finish(ex, u)
        try:
            gs_op_finish(ex, u)
        except ValueError:
            return True
        return False

    assert all(Runtime(nranks=4).run(main))


# -- solver: Sod shock tube, blocking vs overlapped ------------------------

N_SOD = 8
MESH_SOD = BoxMesh(shape=(16, 1, 1), n=N_SOD, periodic=(False, True, True),
                   lengths=(1.0, 0.25, 0.25))
PART_SOD = Partition(MESH_SOD, proc_shape=(2, 1, 1))


def _run_sod(overlap, nsteps=30):
    def main(comm):
        left = SOD_LEFT
        right = SOD_RIGHT

        def dirichlet(s):
            e = s.p / 0.4 + 0.5 * s.rho * s.u**2
            return BoundarySpec(
                "dirichlet", state=(s.rho, s.rho * s.u, 0.0, 0.0, e)
            )

        solver = CMTSolver(
            comm, PART_SOD,
            config=SolverConfig(
                gs_method="pairwise",
                cfl=0.3,
                shock_filter=ShockFilter(n=N_SOD, threshold=-6.0, ramp=2.0),
                boundaries={0: dirichlet(left), 1: dirichlet(right)},
                overlap=overlap,
            ),
        )
        coords = np.stack(
            [MESH_SOD.element_nodes(ec)
             for ec in PART_SOD.local_elements(comm.rank)],
            axis=1,
        )
        x = coords[0]
        blend = 0.5 * (1.0 + np.tanh((x - 0.5) / 0.02))
        rho = left.rho + (right.rho - left.rho) * blend
        p = left.p + (right.p - left.p) * blend
        st = from_primitives(rho, np.zeros((3,) + rho.shape), p)
        for _ in range(nsteps):
            st = solver.step(st, solver.stable_dt(st))
        return st.u, comm.clock.now, comm.clock.hidden_comm_time

    return Runtime(nranks=2).run(main)


@pytest.fixture(scope="module")
def sod_pair():
    return _run_sod(False), _run_sod(True)


class TestSodOverlap:
    def test_bitwise_identical_fields(self, sod_pair):
        blocking, overlapped = sod_pair
        for (u_b, _, _), (u_o, _, _) in zip(blocking, overlapped):
            assert np.array_equal(u_b, u_o)

    def test_step_time_never_increases(self, sod_pair):
        blocking, overlapped = sod_pair
        for (_, t_b, _), (_, t_o, _) in zip(blocking, overlapped):
            assert t_o <= t_b * (1 + 1e-12)

    def test_hidden_comm_accounting(self, sod_pair):
        blocking, overlapped = sod_pair
        assert all(h == 0.0 for _, _, h in blocking)
        assert any(h > 0.0 for _, _, h in overlapped)


# -- mini-app: real-mode monitor equality ---------------------------------

def test_cmtbone_overlap_matches_blocking():
    cfg = CMTBoneConfig(
        n=6, local_shape=(2, 2, 2), nsteps=3, gs_method="pairwise",
        work_mode="real",
    )

    def run(overlap):
        rt = Runtime(nranks=4)
        return rt.run(run_cmtbone, args=(cfg.with_(overlap=overlap),))

    blocking = run(False)
    overlapped = run(True)
    for b, o in zip(blocking, overlapped):
        assert b.monitor_values == o.monitor_values
        assert o.vtime_total <= b.vtime_total * (1 + 1e-12)
        assert b.vtime_hidden_comm == 0.0
    assert any(o.vtime_hidden_comm > 0.0 for o in overlapped)


def test_cmtbone_split_phase_profile_sites():
    cfg = CMTBoneConfig(
        n=5, local_shape=(1, 1, 1), nsteps=2, gs_method="pairwise",
        work_mode="proxy", overlap=True,
    )
    rt = Runtime(nranks=4)
    rt.run(run_cmtbone, args=(cfg,))
    sites = {row.site for row in rt.job_profile().aggregates()}
    assert "gs_op_:begin" in sites
    assert "gs_op_:finish" in sites
    from repro.analysis import split_phase_report

    text = split_phase_report(rt.job_profile())
    assert "gs_op_" in text and "finish" in text


# -- machine-model overlap arithmetic -------------------------------------

class TestMachineOverlapModel:
    def test_exposed_comm(self):
        m = MachineModel.default()
        assert m.exposed_comm_seconds(5.0, 2.0) == 3.0
        assert m.exposed_comm_seconds(2.0, 5.0) == 0.0

    def test_overlapped_interval_is_max(self):
        m = MachineModel.default()
        for compute, comm in ((1.0, 4.0), (4.0, 1.0), (3.0, 3.0)):
            assert m.overlapped_interval_seconds(compute, comm) == (
                pytest.approx(max(compute, comm))
            )


# -- timeline spans --------------------------------------------------------

def test_timeline_span_renders_uppercase():
    from repro.analysis.timeline import TimelineRecorder, render_gantt
    from repro.mpi.clock import VirtualClock

    clock = VirtualClock()
    rec = TimelineRecorder(0, clock)
    t0 = rec.open_span("inflight")
    with rec.region("compute"):
        clock.advance(1.0)
    rec.close_span("inflight", t0)
    assert [iv.span for iv in rec.intervals] == [False, True]
    text = render_gantt(rec.intervals, width=10)
    row = text.splitlines()[1]
    cells = row.split("|")[1]
    assert cells and all(c == "A" for c in cells)
