"""The generic crystal-router transport (sparse all-to-all)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gs.crystal import route
from repro.mpi import Runtime


def run_route(nranks, records_fn):
    def main(comm):
        arrived = route(records_fn(comm.rank, comm.size), comm)
        # Normalize: sort by gid for comparison.
        out = {}
        for dest, (g, v) in arrived.items():
            order = np.argsort(g, kind="stable")
            out[dest] = (g[order].tolist(), v[order].tolist())
        return out

    return Runtime(nranks=nranks).run(main)


def reference(nranks, records_fn):
    """What each rank should receive, computed serially."""
    inbox = {r: ([], []) for r in range(nranks)}
    for src in range(nranks):
        for dest, (g, v) in records_fn(src, nranks).items():
            inbox[dest][0].extend(np.asarray(g).tolist())
            inbox[dest][1].extend(np.asarray(v).tolist())
    out = {}
    for r, (g, v) in inbox.items():
        order = np.argsort(g, kind="stable")
        out[r] = (
            [g[i] for i in order],
            [v[i] for i in order],
        )
    return out


@pytest.mark.parametrize("nranks", [1, 2, 3, 4, 5, 7, 8, 13])
def test_all_pairs_delivery(nranks):
    """Every rank sends a distinct record to every rank (incl. itself)."""

    def records(rank, size):
        return {
            d: (
                np.array([rank * 100 + d]),
                np.array([float(rank * 1000 + d)]),
            )
            for d in range(size)
        }

    res = run_route(nranks, records)
    ref = reference(nranks, records)
    for r in range(nranks):
        got = res[r].get(r, ([], []))
        assert got == ref[r]


@pytest.mark.parametrize("nranks", [2, 5, 8])
def test_sparse_destinations(nranks):
    """Only some ranks send, to only some destinations."""

    def records(rank, size):
        if rank % 2 == 1:
            return {}
        dest = (rank + 1) % size
        return {dest: (np.array([rank]), np.array([float(rank)]))}

    res = run_route(nranks, records)
    ref = reference(nranks, records)
    for r in range(nranks):
        got = res[r].get(r, ([], []))
        assert got == ref[r]


def test_empty_everywhere():
    res = run_route(4, lambda rank, size: {})
    assert all(r == {} for r in res)


@given(st.integers(0, 10_000), st.integers(2, 6))
@settings(max_examples=15, deadline=None)
def test_property_random_traffic(seed, nranks):
    """Random sparse traffic matrices route correctly for any P."""
    rng = np.random.default_rng(seed)
    matrix = {}
    for src in range(nranks):
        dests = rng.choice(nranks, size=rng.integers(0, nranks + 1),
                           replace=False)
        matrix[src] = {
            int(d): (
                rng.integers(0, 50, size=rng.integers(1, 5)),
                rng.standard_normal(0),
            )
            for d in dests
        }
        # values must parallel gids
        matrix[src] = {
            d: (g, rng.standard_normal(len(g)))
            for d, (g, _v) in matrix[src].items()
        }

    def records(rank, size):
        return {
            d: (np.asarray(g), np.asarray(v))
            for d, (g, v) in matrix[rank].items()
        }

    res = run_route(nranks, records)
    ref = reference(nranks, records)
    for r in range(nranks):
        got = res[r].get(r, ([], []))
        # Compare as multisets of (gid, value) pairs.
        got_pairs = sorted(zip(*got))
        ref_pairs = sorted(zip(*ref[r]))
        assert got_pairs == pytest.approx(ref_pairs)


def test_stage_count_is_logarithmic():
    """The paper: crystal router completes in ~log2(P) stages.

    Count distinct communication rounds via the MPI profile: each stage
    is one isend+recv per rank, so message count per rank is O(log P),
    not O(P).
    """

    def records(rank, size):
        # all-to-all traffic: worst case for pairwise, fine for crystal
        return {
            d: (np.array([rank]), np.array([1.0]))
            for d in range(size) if d != rank
        }

    for p, max_msgs in [(8, 3 + 1), (16, 4 + 1)]:
        rt = Runtime(nranks=p)

        def main(comm):
            route(records(comm.rank, comm.size), comm)

        rt.run(main)
        prof = rt.job_profile()
        sends = sum(
            r.count for r in prof.aggregates()
            if r.op in ("MPI_Send", "MPI_Isend")
        )
        # pow2: exactly log2(p) stage messages per rank
        assert sends <= p * max_msgs
