"""Exact Riemann solver, validated against published Toro test cases."""

import numpy as np
import pytest

from repro.solver.riemann import (
    PrimitiveState,
    SOD_LEFT,
    SOD_RIGHT,
    exact_riemann,
)


class TestSod:
    """Toro, Table 4.2, Test 1 (the Sod problem)."""

    def setup_method(self):
        self.sol = exact_riemann(SOD_LEFT, SOD_RIGHT)

    def test_star_pressure(self):
        assert self.sol.p_star == pytest.approx(0.30313, abs=2e-5)

    def test_star_velocity(self):
        assert self.sol.u_star == pytest.approx(0.92745, abs=2e-5)

    def test_star_densities(self):
        assert self.sol.rho_star_left == pytest.approx(0.42632, abs=2e-5)
        assert self.sol.rho_star_right == pytest.approx(0.26557, abs=2e-5)

    def test_shock_position_at_t02(self):
        # Shock at x = 0.5 + S*0.2 with S ~ 1.7522 -> x ~ 0.8504.
        s = self.sol.shock_speed_right()
        assert s == pytest.approx(1.7522, abs=2e-4)

    def test_profile_landmarks(self):
        x = np.array([0.1, 0.55, 0.75, 0.95])
        rho, u, p = self.sol.profile(x, t=0.2, x0=0.5)
        # Undisturbed left, star-left, star-right, undisturbed right.
        assert rho[0] == pytest.approx(1.0)
        assert rho[1] == pytest.approx(0.42632, abs=1e-4)
        assert rho[2] == pytest.approx(0.26557, abs=1e-4)
        assert rho[3] == pytest.approx(0.125)
        assert p[1] == pytest.approx(p[2], rel=1e-10)  # contact: p equal
        assert u[1] == pytest.approx(u[2], rel=1e-10)  # and u equal

    def test_fan_is_continuous(self):
        """The rarefaction fan joins its head and tail smoothly."""
        xs = np.linspace(0.26, 0.49, 40)
        rho, _u, _p = self.sol.profile(xs, t=0.2, x0=0.5)
        drho = np.diff(rho)
        assert np.all(drho < 0)           # monotone expansion
        assert np.max(np.abs(drho)) < 0.05  # no jumps inside the fan


class TestToro2:
    """Toro Test 2: double rarefaction (123 problem)."""

    def test_star_values(self):
        left = PrimitiveState(1.0, -2.0, 0.4)
        right = PrimitiveState(1.0, 2.0, 0.4)
        sol = exact_riemann(left, right)
        assert sol.p_star == pytest.approx(0.00189, abs=5e-5)
        assert sol.u_star == pytest.approx(0.0, abs=1e-10)


class TestToro3:
    """Toro Test 3: strong left rarefaction + strong right shock."""

    def test_star_values(self):
        left = PrimitiveState(1.0, 0.0, 1000.0)
        right = PrimitiveState(1.0, 0.0, 0.01)
        sol = exact_riemann(left, right)
        assert sol.p_star == pytest.approx(460.894, rel=1e-4)
        assert sol.u_star == pytest.approx(19.5975, rel=1e-4)


class TestProperties:
    def test_symmetric_problem_has_zero_star_velocity(self):
        left = PrimitiveState(1.0, 0.5, 1.0)
        right = PrimitiveState(1.0, -0.5, 1.0)
        sol = exact_riemann(left, right)
        assert sol.u_star == pytest.approx(0.0, abs=1e-12)
        assert sol.rho_star_left == pytest.approx(sol.rho_star_right)

    def test_trivial_problem_is_identity(self):
        s = PrimitiveState(1.3, 0.2, 2.0)
        sol = exact_riemann(s, s)
        assert sol.p_star == pytest.approx(2.0, rel=1e-10)
        assert sol.u_star == pytest.approx(0.2, rel=1e-10)
        rho, u, p = sol.profile(np.array([-1.0, 0.0, 1.0]), t=1.0)
        np.testing.assert_allclose(rho, 1.3, rtol=1e-9)
        np.testing.assert_allclose(u, 0.2, rtol=1e-9)

    def test_vacuum_rejected(self):
        left = PrimitiveState(1.0, -10.0, 0.1)
        right = PrimitiveState(1.0, 10.0, 0.1)
        with pytest.raises(ValueError, match="vacuum"):
            exact_riemann(left, right)

    def test_state_validation(self):
        with pytest.raises(ValueError):
            PrimitiveState(-1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            PrimitiveState(1.0, 0.0, 0.0)

    def test_profile_needs_positive_time(self):
        sol = exact_riemann(SOD_LEFT, SOD_RIGHT)
        with pytest.raises(ValueError):
            sol.profile(np.array([0.0]), t=0.0)
