"""Face topology: neighbours, boundary handling, rank adjacency."""


from repro.mesh import (
    BoxMesh,
    FACE_AXIS_SIDE,
    NFACES,
    OPPOSITE_FACE,
    Partition,
    RankTopology,
    neighbor_coords,
)


class TestFaceConstants:
    def test_six_faces(self):
        assert NFACES == 6
        assert len(FACE_AXIS_SIDE) == 6
        assert len(OPPOSITE_FACE) == 6

    def test_opposite_is_involution(self):
        for f in range(6):
            assert OPPOSITE_FACE[OPPOSITE_FACE[f]] == f
            # Opposite face is on the same axis, other side.
            assert FACE_AXIS_SIDE[f][0] == FACE_AXIS_SIDE[OPPOSITE_FACE[f]][0]
            assert FACE_AXIS_SIDE[f][1] != FACE_AXIS_SIDE[OPPOSITE_FACE[f]][1]


class TestNeighborCoords:
    def test_interior(self):
        mesh = BoxMesh(shape=(3, 3, 3), n=3)
        assert neighbor_coords(mesh, (1, 1, 1), 0) == (0, 1, 1)
        assert neighbor_coords(mesh, (1, 1, 1), 1) == (2, 1, 1)
        assert neighbor_coords(mesh, (1, 1, 1), 2) == (1, 0, 1)
        assert neighbor_coords(mesh, (1, 1, 1), 5) == (1, 1, 2)

    def test_periodic_wrap(self):
        mesh = BoxMesh(shape=(3, 3, 3), n=3, periodic=(True,) * 3)
        assert neighbor_coords(mesh, (0, 0, 0), 0) == (2, 0, 0)
        assert neighbor_coords(mesh, (2, 0, 0), 1) == (0, 0, 0)

    def test_nonperiodic_boundary_is_none(self):
        mesh = BoxMesh(shape=(3, 3, 3), n=3, periodic=(False,) * 3)
        assert neighbor_coords(mesh, (0, 0, 0), 0) is None
        assert neighbor_coords(mesh, (2, 2, 2), 5) is None
        assert neighbor_coords(mesh, (0, 0, 0), 1) == (1, 0, 0)

    def test_reciprocal(self):
        mesh = BoxMesh(shape=(4, 3, 2), n=3)
        for ec in mesh.iter_elements():
            for f in range(6):
                nb = neighbor_coords(mesh, ec, f)
                assert nb is not None  # periodic: all interior
                back = neighbor_coords(mesh, nb, OPPOSITE_FACE[f])
                assert back == ec


class TestRankTopology:
    def test_periodic_box_has_no_boundary(self):
        mesh = BoxMesh(shape=(4, 4, 4), n=3)
        part = Partition(mesh, proc_shape=(2, 2, 2))
        topo = RankTopology(part, rank=0)
        assert topo.boundary_links() == []
        assert len(topo.links) == part.nel_local * 6

    def test_nonperiodic_corner_rank_has_boundary(self):
        mesh = BoxMesh(shape=(4, 4, 4), n=3, periodic=(False,) * 3)
        part = Partition(mesh, proc_shape=(2, 2, 2))
        topo = RankTopology(part, rank=0)
        # Rank 0 brick is 2x2x2 at the corner: 3 exposed faces of 4 el.
        assert len(topo.boundary_links()) == 3 * 4

    def test_face_neighbor_ranks_2x2x2(self):
        mesh = BoxMesh(shape=(4, 4, 4), n=3)
        part = Partition(mesh, proc_shape=(2, 2, 2))
        topo = RankTopology(part, rank=0)
        # With a periodic 2-rank extent, +x and -x are the same rank.
        assert topo.neighbor_ranks == [1, 2, 4]

    def test_fig7_neighbor_ranks(self):
        mesh = BoxMesh(shape=(40, 40, 16), n=10)
        part = Partition(mesh, proc_shape=(8, 8, 4))
        topo = RankTopology(part, rank=0)
        # 6 distinct face neighbours on the periodic processor torus.
        assert len(topo.neighbor_ranks) == 6
        assert topo.neighbor_ranks == [1, 7, 8, 56, 64, 192]

    def test_remote_links_to_rank_grouping(self):
        mesh = BoxMesh(shape=(4, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 1, 1))
        topo = RankTopology(part, rank=0)
        groups = topo.faces_to_rank()
        assert set(groups) == {1}
        # 2x2 elements face rank 1 on +x and (periodic wrap) on -x.
        assert len(groups[1]) == 8

    def test_surface_bytes(self):
        mesh = BoxMesh(shape=(4, 2, 2), n=5)
        part = Partition(mesh, proc_shape=(2, 1, 1))
        topo = RankTopology(part, rank=0)
        assert topo.surface_bytes_per_exchange() == 8 * 25 * 8

    def test_self_links_not_remote(self):
        """Links between a rank's own elements are not 'remote'."""
        mesh = BoxMesh(shape=(4, 4, 4), n=3)
        part = Partition(mesh, proc_shape=(2, 2, 2))
        topo = RankTopology(part, rank=0)
        for link in topo.remote_links():
            assert link.neighbor_rank != 0
