"""Runtime lifecycle: errors, deadlock detection, comm management."""

import numpy as np
import pytest

from repro.mpi import DeadlockError, MPIError, Runtime, TimePolicy, spmd


class TestLifecycle:
    def test_single_rank_inline(self):
        res = Runtime(nranks=1).run(lambda comm: comm.rank)
        assert res == [0]

    def test_results_in_rank_order(self):
        res = Runtime(nranks=5).run(lambda comm: comm.rank * 10)
        assert res == [0, 10, 20, 30, 40]

    def test_args_kwargs_forwarded(self):
        def main(comm, a, b=0):
            return a + b + comm.rank

        res = Runtime(nranks=2).run(main, args=(5,), kwargs={"b": 7})
        assert res == [12, 13]

    def test_single_shot(self):
        rt = Runtime(nranks=2)
        rt.run(lambda comm: None)
        with pytest.raises(MPIError):
            rt.run(lambda comm: None)

    def test_bad_nranks(self):
        with pytest.raises(ValueError):
            Runtime(nranks=0)

    def test_spmd_helper(self):
        assert spmd(3, lambda comm: comm.size) == [3, 3, 3]


class TestErrorPropagation:
    def test_exception_reraised_with_rank(self):
        def main(comm):
            if comm.rank == 2:
                raise RuntimeError("boom on 2")
            comm.barrier()

        with pytest.raises(MPIError, match="rank 2"):
            Runtime(nranks=4).run(main)

    def test_blocked_peers_released_on_error(self):
        """Ranks blocked in recv when a peer dies must not hang."""

        def main(comm):
            if comm.rank == 0:
                raise ValueError("dead")
            comm.recv(source=0)

        with pytest.raises(MPIError):
            Runtime(nranks=3).run(main)

    def test_abort_error_not_primary(self):
        """The user's exception wins over secondary AbortErrors."""

        def main(comm):
            if comm.rank == 1:
                raise KeyError("the real bug")
            comm.recv(source=1 - comm.rank if comm.size == 2 else 1)

        with pytest.raises(MPIError, match="the real bug"):
            Runtime(nranks=2).run(main)


class TestDeadlockDetection:
    def test_recv_from_silent_peer(self):
        def main(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=1)

        rt = Runtime(nranks=3)
        with pytest.raises(DeadlockError):
            rt.run(main)
        assert rt.deadlock_report is not None
        assert "rank" in rt.deadlock_report

    def test_single_rank_deadlock_detected(self):
        """Regression: ``nranks=1`` used to run the job inline on the
        calling thread without ever starting the deadlock watchdog, so
        a self-deadlocked single-rank job hung forever.  The single-rank
        path now goes through the same worker-thread + watchdog machinery
        as the multi-rank path."""
        rt = Runtime(nranks=1)
        with pytest.raises(DeadlockError):
            rt.run(lambda comm: comm.recv(source=0, tag=1))
        assert rt.deadlock_report is not None
        assert "rank 0" in rt.deadlock_report

    def test_mismatched_tags_deadlock(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, dest=1, tag=5)
                comm.recv(source=1, tag=5)
            else:
                comm.recv(source=0, tag=6)  # wrong tag: never matches

        with pytest.raises(DeadlockError):
            Runtime(nranks=2).run(main)

    def test_detection_can_be_disabled(self):
        """With detection off, a correct program still runs normally."""
        rt = Runtime(nranks=2, deadlock_detection=False)
        res = rt.run(lambda comm: comm.allreduce(1))
        assert res == [2, 2]


class TestCommManagement:
    def test_dup_isolates_traffic(self):
        def main(comm):
            dup = comm.dup()
            # Same-signature message on each comm; must not cross.
            other = 1 - comm.rank
            r1 = comm.irecv(source=other, tag=1)
            r2 = dup.irecv(source=other, tag=1)
            dup.send("dup", dest=other, tag=1)
            comm.send("world", dest=other, tag=1)
            return r1.wait(), r2.wait()

        res = Runtime(nranks=2).run(main)
        assert res == [("world", "dup")] * 2

    def test_split_groups_and_ranks(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return sub.rank, sub.size, sub.allreduce(comm.rank)

        res = Runtime(nranks=6).run(main)
        evens = sum(r for r in range(6) if r % 2 == 0)
        odds = sum(r for r in range(6) if r % 2 == 1)
        for r, (sub_rank, sub_size, total) in enumerate(res):
            assert sub_size == 3
            assert sub_rank == r // 2
            assert total == (evens if r % 2 == 0 else odds)

    def test_split_key_reorders(self):
        def main(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        res = Runtime(nranks=4).run(main)
        assert res == [3, 2, 1, 0]

    def test_split_negative_color_returns_none(self):
        def main(comm):
            sub = comm.split(color=-1 if comm.rank == 0 else 0)
            if sub is None:
                return None
            return sub.size

        res = Runtime(nranks=3).run(main)
        assert res == [None, 2, 2]


class TestReporting:
    def test_clock_stats(self):
        def main(comm):
            comm.compute(seconds=0.1 * (comm.rank + 1))
            comm.barrier()

        rt = Runtime(nranks=3)
        rt.run(main)
        stats = rt.clock_stats()
        assert [s.rank for s in stats] == [0, 1, 2]
        assert all(s.total >= 0.1 for s in stats)
        assert all(s.comm > 0 for s in stats)  # barrier cost

    def test_job_profile_populated(self):
        def main(comm):
            comm.allreduce(np.ones(10))
            comm.barrier()

        rt = Runtime(nranks=4)
        rt.run(main)
        prof = rt.job_profile()
        assert prof.nranks == 4
        ops = {r.op for r in prof.aggregates()}
        assert "MPI_Allreduce" in ops
        assert "MPI_Barrier" in ops
        assert prof.mpi_time > 0

    def test_time_policy_exposed(self):
        rt = Runtime(nranks=1, time_policy=TimePolicy.MEASURED)
        res = rt.run(lambda comm: comm.time_policy)
        assert res == [TimePolicy.MEASURED]

    def test_measured_region(self):
        def main(comm):
            with comm.measured_region():
                np.linalg.norm(np.random.default_rng(0).random(1000))
            return comm.clock.compute_time

        res = Runtime(nranks=1, time_policy=TimePolicy.MEASURED).run(main)
        assert res[0] > 0
