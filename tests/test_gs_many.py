"""Packed multi-field gather-scatter (gs_op_many)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gs import gs_op, gs_op_many, gs_setup
from repro.mesh import BoxMesh, Partition, dg_face_numbering
from repro.mpi import MAX, SUM, Runtime

MESH = BoxMesh(shape=(4, 2, 2), n=4)
PART = Partition(MESH, proc_shape=(2, 2, 1))
NF = 5


def run_many(method, op=SUM, seed=0, nranks=4):
    def main(comm):
        h = gs_setup(dg_face_numbering(PART, comm.rank), comm)
        rng = np.random.default_rng(seed + comm.rank)
        fields = [rng.standard_normal(h.shape) for _ in range(NF)]
        packed = gs_op_many(h, fields, op=op, method=method)
        singles = [gs_op(h, f, op=op, method=method) for f in fields]
        err = max(
            float(np.max(np.abs(p - s))) for p, s in zip(packed, singles)
        )
        return err

    return Runtime(nranks=nranks).run(main)


class TestEquivalence:
    @pytest.mark.parametrize("method", ["pairwise", "crystal", "allreduce"])
    def test_matches_per_field_gs(self, method):
        errs = run_many(method)
        assert max(errs) < 1e-12

    @pytest.mark.parametrize("method", ["pairwise", "crystal"])
    def test_max_op(self, method):
        errs = run_many(method, op=MAX, seed=5)
        assert max(errs) < 1e-12

    def test_single_rank(self):
        def main(comm):
            h = gs_setup(dg_face_numbering(
                Partition(MESH, proc_shape=(1, 1, 1)), 0), comm)
            f = np.random.default_rng(0).standard_normal(h.shape)
            packed = gs_op_many(h, [f, 2 * f])
            single = gs_op(h, f)
            return float(np.max(np.abs(packed[0] - single))), float(
                np.max(np.abs(packed[1] - 2 * single))
            )

        e1, e2 = Runtime(nranks=1).run(main)[0]
        assert e1 < 1e-12 and e2 < 1e-12

    def test_empty_field_list(self):
        def main(comm):
            h = gs_setup(dg_face_numbering(PART, comm.rank), comm)
            return gs_op_many(h, [])

        assert Runtime(nranks=4).run(main)[0] == []

    @given(st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_property_pairwise_vs_crystal(self, seed):
        def main(comm):
            h = gs_setup(dg_face_numbering(PART, comm.rank), comm)
            rng = np.random.default_rng(seed + comm.rank)
            fields = [rng.standard_normal(h.shape) for _ in range(3)]
            a = gs_op_many(h, fields, method="pairwise")
            b = gs_op_many(h, fields, method="crystal")
            return max(
                float(np.max(np.abs(x - y))) for x, y in zip(a, b)
            )

        assert max(Runtime(nranks=4).run(main)) < 1e-12


class TestPacking:
    def test_fewer_messages_than_per_field(self):
        """Packing cuts pairwise message count by the field count."""

        def main(comm, packed):
            h = gs_setup(dg_face_numbering(PART, comm.rank), comm)
            rng = np.random.default_rng(comm.rank)
            fields = [rng.standard_normal(h.shape) for _ in range(NF)]
            if packed:
                gs_op_many(h, fields, method="pairwise", site="probe")
            else:
                for f in fields:
                    gs_op(h, f, method="pairwise", site="probe")

        counts = {}
        for packed in (False, True):
            rt = Runtime(nranks=4)
            rt.run(main, args=(packed,))
            counts[packed] = sum(
                r.count for r in rt.job_profile().aggregates()
                if r.op == "MPI_Isend" and r.site == "probe"
            )
        assert counts[True] * NF == counts[False]

    def test_packed_is_faster_in_virtual_time(self):
        def main(comm, packed):
            h = gs_setup(dg_face_numbering(PART, comm.rank), comm)
            rng = np.random.default_rng(comm.rank)
            fields = [rng.standard_normal(h.shape) for _ in range(NF)]
            comm.barrier()
            t0 = comm.clock.now
            if packed:
                gs_op_many(h, fields, method="pairwise")
            else:
                for f in fields:
                    gs_op(h, f, method="pairwise")
            return comm.clock.now - t0

        t_sep = max(Runtime(nranks=4).run(main, args=(False,)))
        t_pack = max(Runtime(nranks=4).run(main, args=(True,)))
        assert t_pack < t_sep

    def test_shape_mismatch_rejected(self):
        def main(comm):
            h = gs_setup(dg_face_numbering(PART, comm.rank), comm)
            gs_op_many(h, [np.zeros(h.shape), np.zeros((2, 2))])

        with pytest.raises(Exception, match="shape"):
            Runtime(nranks=4).run(main)

    def test_unknown_method(self):
        def main(comm):
            h = gs_setup(dg_face_numbering(PART, comm.rank), comm)
            gs_op_many(h, [np.zeros(h.shape)], method="psychic")

        with pytest.raises(Exception, match="unknown gs method"):
            Runtime(nranks=4).run(main)
