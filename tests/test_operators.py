"""Reference-element operators: derivative/interpolation/stiffness."""

import numpy as np
import pytest

from repro.kernels.gll import gll_points, gll_weights
from repro.kernels.operators import (
    dealias_order,
    derivative_matrix,
    interpolation_matrix,
    mass_matrix_diagonal,
    stiffness_1d,
)

NS = [2, 3, 5, 8, 10, 16, 25]


class TestDerivativeMatrix:
    @pytest.mark.parametrize("n", NS)
    def test_exact_on_monomials(self, n):
        x = np.asarray(gll_points(n))
        d = np.asarray(derivative_matrix(n))
        for k in range(n):
            deriv = d @ x**k
            expect = k * x ** (k - 1) if k > 0 else np.zeros(n)
            np.testing.assert_allclose(deriv, expect, atol=1e-9 * max(1, n**2))

    @pytest.mark.parametrize("n", NS)
    def test_rows_sum_to_zero(self, n):
        d = derivative_matrix(n)
        np.testing.assert_allclose(np.asarray(d).sum(axis=1), 0.0, atol=1e-13)

    @pytest.mark.parametrize("n", [3, 6, 10])
    def test_sbp_property(self, n):
        """Q = W D satisfies Q + Q^T = B = diag(-1, 0, ..., 0, 1)."""
        d = np.asarray(derivative_matrix(n))
        w = np.asarray(gll_weights(n))
        q = w[:, None] * d
        b = np.zeros((n, n))
        b[0, 0], b[-1, -1] = -1.0, 1.0
        np.testing.assert_allclose(q + q.T, b, atol=1e-12)

    def test_known_n2(self):
        np.testing.assert_allclose(
            derivative_matrix(2), [[-0.5, 0.5], [-0.5, 0.5]]
        )

    def test_cached(self):
        assert derivative_matrix(5) is derivative_matrix(5)


class TestInterpolationMatrix:
    @pytest.mark.parametrize("n,m", [(4, 6), (5, 8), (6, 9), (8, 12)])
    def test_exact_on_polynomials(self, n, m):
        x_from = np.asarray(gll_points(n))
        x_to = np.asarray(gll_points(m))
        mat = np.asarray(interpolation_matrix(n, m))
        for k in range(n):
            np.testing.assert_allclose(
                mat @ x_from**k, x_to**k, atol=1e-11
            )

    def test_shape(self):
        assert interpolation_matrix(5, 8).shape == (8, 5)

    def test_identity_when_same(self):
        np.testing.assert_allclose(
            interpolation_matrix(6, 6), np.eye(6), atol=1e-12
        )

    def test_rows_sum_to_one(self):
        mat = np.asarray(interpolation_matrix(5, 9))
        np.testing.assert_allclose(mat.sum(axis=1), 1.0, atol=1e-12)


class TestMassAndStiffness:
    @pytest.mark.parametrize("n", [3, 6, 10])
    def test_mass_is_weights(self, n):
        np.testing.assert_array_equal(
            mass_matrix_diagonal(n), gll_weights(n)
        )

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_stiffness_symmetric_psd(self, n):
        k = np.asarray(stiffness_1d(n))
        np.testing.assert_allclose(k, k.T)
        eig = np.linalg.eigvalsh(k)
        assert eig.min() > -1e-12

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_stiffness_nullspace_is_constants(self, n):
        k = np.asarray(stiffness_1d(n))
        np.testing.assert_allclose(k @ np.ones(n), 0.0, atol=1e-12)
        eig = np.linalg.eigvalsh(k)
        assert np.sum(np.abs(eig) < 1e-10) == 1  # exactly one zero mode

    @pytest.mark.parametrize("n", [4, 6, 9])
    def test_stiffness_quadratic_form(self, n):
        """u^T K u equals the quadrature of (u')^2 for poly data."""
        x = np.asarray(gll_points(n))
        w = np.asarray(gll_weights(n))
        k = np.asarray(stiffness_1d(n))
        u = x**2  # u' = 2x, integral of 4x^2 on [-1,1] = 8/3
        assert u @ k @ u == pytest.approx(8.0 / 3.0, abs=1e-12)
        assert np.allclose(
            u @ k @ u, np.sum(w * (2 * x) ** 2), atol=1e-12
        )


class TestDealiasOrder:
    @pytest.mark.parametrize(
        "n,expected", [(4, 6), (5, 8), (6, 9), (10, 15), (16, 24)]
    )
    def test_three_halves_rule(self, n, expected):
        assert dealias_order(n) == expected
