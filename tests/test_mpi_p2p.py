"""Point-to-point semantics of the simulated MPI."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Runtime, waitall


def run(nranks, fn, **kw):
    return Runtime(nranks=nranks, **kw).run(fn)


class TestBlockingSendRecv:
    def test_simple_pair(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(np.arange(5.0), dest=1, tag=3)
                return None
            return comm.recv(source=0, tag=3)

        res = run(2, main)
        np.testing.assert_array_equal(res[1], np.arange(5.0))

    def test_send_buffer_reuse_safe(self):
        """MPI semantics: sender may overwrite its buffer after send."""

        def main(comm):
            if comm.rank == 0:
                buf = np.zeros(4)
                comm.send(buf, dest=1)
                buf[:] = 99.0
                return None
            return comm.recv(source=0)

        res = run(2, main)
        np.testing.assert_array_equal(res[1], np.zeros(4))

    def test_python_object_payload(self):
        def main(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": (1, 2)}, dest=1, tag=1)
                return None
            return comm.recv(source=0, tag=1)

        assert run(2, main)[1] == {"a": 7, "b": (1, 2)}

    def test_tag_selectivity(self):
        """A receive with tag T skips messages with other tags."""

        def main(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=10)
                comm.send("second", dest=1, tag=20)
                return None
            second = comm.recv(source=0, tag=20)
            first = comm.recv(source=0, tag=10)
            return first, second

        assert run(2, main)[1] == ("first", "second")

    def test_nonovertaking_same_tag(self):
        """Messages on one (src, dst, tag) channel arrive in send order."""

        def main(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, dest=1, tag=5)
                return None
            return [comm.recv(source=0, tag=5) for _ in range(10)]

        assert run(2, main)[1] == list(range(10))

    def test_any_source_any_tag(self):
        def main(comm):
            if comm.rank == 0:
                got = comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                return got
            comm.send(f"hello from {comm.rank}", dest=0, tag=comm.rank)
            return None

        assert run(2, main)[0] == "hello from 1"

    def test_recv_returns_status(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(np.zeros(16), dest=1, tag=9)
                return None
            payload, status = comm.recv(source=0, tag=9, return_status=True)
            return status.source, status.tag, status.nbytes

        assert run(2, main)[1] == (0, 9, 128)

    def test_self_send(self):
        def main(comm):
            req = comm.irecv(source=0, tag=1)
            comm.send("me", dest=0, tag=1)
            return req.wait()

        assert run(1, main)[0] == "me"


class TestNonblocking:
    def test_irecv_isend_roundtrip(self):
        def main(comm):
            other = 1 - comm.rank
            req = comm.irecv(source=other, tag=2)
            comm.isend(np.full(3, comm.rank), dest=other, tag=2)
            return req.wait()

        res = run(2, main)
        np.testing.assert_array_equal(res[0], np.full(3, 1.0))
        np.testing.assert_array_equal(res[1], np.full(3, 0.0))

    def test_send_request_is_complete(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.isend(1.0, dest=1)
                return req.test(), req.completed
            comm.recv(source=0)
            return None

        assert run(2, main)[0] == (True, True)

    def test_posted_irecv_matches_before_later_recv(self):
        """A posted irecv has matching priority over later receives."""

        def main(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=7)
                second = comm.recv(source=1, tag=7)
                first = req.wait()
                return first, second
            comm.send("one", dest=0, tag=7)
            comm.send("two", dest=0, tag=7)
            return None

        assert run(2, main)[0] == ("one", "two")

    def test_waitall_returns_in_request_order(self):
        def main(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(source=1, tag=t) for t in (1, 2, 3)]
                return waitall(reqs)
            for t in (3, 2, 1):
                comm.send(t * 10, dest=0, tag=t)
            return None

        assert run(2, main)[0] == [10, 20, 30]

    def test_wait_is_idempotent(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1)
                a = req.wait()
                b = req.wait()
                return a, b
            comm.send(42, dest=0)
            return None

        assert run(2, main)[0] == (42, 42)

    def test_request_status_after_wait(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=4)
                req.wait()
                return req.status.source, req.status.tag
            comm.send(np.zeros(2), dest=0, tag=4)
            return None

        assert run(2, main)[0] == (1, 4)


class TestSendrecvProbe:
    def test_sendrecv_ring(self):
        def main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        res = run(4, main)
        assert res == [3, 0, 1, 2]

    def test_probe(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, dest=1, tag=6)
                comm.barrier()
                return None
            comm.barrier()
            seen = comm.probe(source=0, tag=6)
            not_seen = comm.probe(source=0, tag=99)
            comm.recv(source=0, tag=6)
            return seen, not_seen

        assert run(2, main)[1] == (True, False)

    def test_probe_is_read_only(self):
        """Probe must never consume or reorder the inbox: after any
        number of probes, every message is still receivable in per-source
        FIFO order (MPI_Iprobe semantics).  Regression for the old
        implementation that matched via a throwaway ``PendingRecv``."""

        def main(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, dest=1, tag=i % 3)
                comm.barrier()
                return None
            comm.barrier()
            # Hammer the mailbox with probes, wildcard and specific.
            for _ in range(20):
                assert comm.probe(source=0, tag=ANY_TAG)
                assert comm.probe(source=ANY_SOURCE, tag=0)
                assert not comm.probe(source=0, tag=77)
            # Everything still there, in order, per tag stream.
            got = [comm.recv(source=0, tag=t % 3) for t in range(10)]
            assert not comm.probe(source=0, tag=ANY_TAG)
            return got

        assert run(2, main)[1] == list(range(10))

    def test_probe_under_concurrent_delivery_stress(self):
        """Multi-rank stress: rank 0 interleaves probes with wildcard
        receives while three senders deliver concurrently.  Asserts all
        messages arrive, per-source FIFO holds, and no residual match
        survives the drain."""
        nmsg = 30

        def main(comm):
            if comm.rank != 0:
                for i in range(nmsg):
                    comm.send((comm.rank, i), dest=0, tag=7)
                return None
            per_source = {r: [] for r in range(1, comm.size)}
            for _ in range((comm.size - 1) * nmsg):
                comm.probe(source=ANY_SOURCE, tag=7)  # must not consume
                src, i = comm.recv(source=ANY_SOURCE, tag=7)
                per_source[src].append(i)
            assert not comm.probe(source=ANY_SOURCE, tag=ANY_TAG)
            return per_source

        per_source = run(4, main)[0]
        for src, seq in per_source.items():
            assert seq == list(range(nmsg)), f"source {src} out of order"


class TestRankValidation:
    def test_bad_dest(self):
        from repro.mpi import MPIError

        def main(comm):
            comm.send(1, dest=5)

        with pytest.raises(MPIError):
            run(2, main)

    def test_bad_probe_source(self):
        """Regression: ``probe`` skipped rank validation, so a negative
        source silently matched nothing instead of raising."""
        from repro.mpi import MPIError

        def main(comm):
            comm.probe(source=-2)

        with pytest.raises(MPIError):
            run(2, main)

    def test_bad_source(self):
        from repro.mpi import MPIError

        def main(comm):
            comm.recv(source=-3)

        with pytest.raises(MPIError):
            run(2, main)


class TestVirtualTiming:
    def test_recv_charges_latency(self):
        """Receiving a message from a peer costs at least base latency."""

        def main(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1000), dest=1)
                return comm.clock.now
            comm.recv(source=0)
            return comm.clock.now

        res = run(2, main)
        # Receiver finishes after the sender injected + wire time.
        assert res[1] > res[0]

    def test_larger_messages_cost_more(self):
        def main(comm, nbytes):
            if comm.rank == 0:
                comm.send(np.zeros(nbytes // 8), dest=1)
                return 0.0
            comm.recv(source=0)
            return comm.clock.now

        t_small = Runtime(nranks=2).run(main, args=(1_000,))[1]
        t_big = Runtime(nranks=2).run(main, args=(10_000_000,))[1]
        assert t_big > t_small

    def test_compute_advances_clock(self):
        def main(comm):
            comm.compute(seconds=0.5)
            comm.compute(flops=1e9)
            return comm.clock.now, comm.clock.compute_time

        now, comp = run(1, main)[0]
        assert now == comp
        assert now > 0.5
