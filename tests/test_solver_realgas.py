"""The stiffened-gas (real-gas roadmap) equation of state."""

import numpy as np
import pytest

from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import CMTSolver, SolverConfig, from_primitives
from repro.solver.eos import IdealGas, StiffenedGas


class TestStiffenedGas:
    def test_reduces_to_ideal_at_zero_pinf(self):
        ideal = IdealGas(gamma=1.4)
        stiff = StiffenedGas(gamma=1.4, p_inf=0.0)
        rho = np.array([1.0, 2.5])
        mom = np.array([[0.5, -1.0], [0.0, 0.2], [1.0, 0.0]])
        e = np.array([3.0, 7.0])
        np.testing.assert_allclose(
            stiff.pressure(rho, mom, e), ideal.pressure(rho, mom, e)
        )
        p = np.array([1.0, 4.0])
        np.testing.assert_allclose(
            stiff.sound_speed(rho, p), ideal.sound_speed(rho, p)
        )

    def test_pressure_energy_roundtrip(self):
        eos = StiffenedGas(gamma=6.1, p_inf=2.0)
        rho = np.array([1.2])
        vel = np.array([[0.3], [0.0], [-0.1]])
        p = np.array([5.0])
        e = eos.total_energy(rho, vel, p)
        np.testing.assert_allclose(
            eos.pressure(rho, rho * vel, e), p, rtol=1e-13
        )

    def test_stiffening_raises_sound_speed(self):
        soft = StiffenedGas(gamma=1.4, p_inf=0.0)
        hard = StiffenedGas(gamma=1.4, p_inf=10.0)
        rho = np.array([1.0])
        p = np.array([1.0])
        assert hard.sound_speed(rho, p)[0] > soft.sound_speed(rho, p)[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            StiffenedGas(gamma=1.0)
        with pytest.raises(ValueError):
            StiffenedGas(p_inf=-1.0)

    def test_temperature_positive(self):
        eos = StiffenedGas(gamma=6.1, p_inf=2.0)
        t = eos.temperature(np.array([1.0]), np.array([1.0]))
        assert t[0] > 0


class TestSolverWithRealGas:
    MESH = BoxMesh(shape=(4, 1, 1), n=5)
    PART = Partition(MESH, proc_shape=(2, 1, 1))

    def test_freestream_preserved(self):
        eos = StiffenedGas(gamma=4.0, p_inf=1.5)

        def main(comm):
            solver = CMTSolver(
                comm, self.PART, eos=eos,
                config=SolverConfig(gs_method="pairwise"),
            )
            rho = np.full((self.PART.nel_local,) + (self.MESH.n,) * 3, 1.2)
            vel = np.zeros((3,) + rho.shape)
            vel[0] = 0.3
            st = from_primitives(rho, vel, np.full_like(rho, 2.0), eos=eos)
            u0 = st.u.copy()
            st = solver.run(st, nsteps=4, dt=5e-4)
            return float(np.max(np.abs(st.u - u0)))

        assert max(Runtime(nranks=2).run(main)) < 1e-12

    def test_conservation_and_stability(self):
        eos = StiffenedGas(gamma=4.0, p_inf=1.5)

        def main(comm):
            solver = CMTSolver(
                comm, self.PART, eos=eos,
                config=SolverConfig(gs_method="pairwise", cfl=0.3),
            )
            coords = np.stack(
                [self.MESH.element_nodes(ec)
                 for ec in self.PART.local_elements(comm.rank)],
                axis=1,
            )
            x = coords[0]
            rho = 1.0 + 0.01 * np.sin(2 * np.pi * x)
            vel = np.zeros((3,) + rho.shape)
            st = from_primitives(rho, vel, np.full_like(rho, 2.0), eos=eos)
            before = solver.conserved_totals(st)
            dt = solver.stable_dt(st)
            st = solver.run(st, nsteps=15, dt=dt)
            after = solver.conserved_totals(st)
            return before, after, st.is_physical()

        before, after, ok = Runtime(nranks=2).run(main)[0]
        assert ok
        for key in before:
            assert after[key] == pytest.approx(before[key], abs=1e-10)

    def test_stiffened_dt_smaller_than_ideal(self):
        """Faster sound -> tighter CFL, automatically picked up."""

        def dt_for(eos):
            def main(comm):
                solver = CMTSolver(
                    comm, self.PART, eos=eos,
                    config=SolverConfig(gs_method="pairwise"),
                )
                rho = np.ones(
                    (self.PART.nel_local,) + (self.MESH.n,) * 3
                )
                st = from_primitives(
                    rho, np.zeros((3,) + rho.shape),
                    np.full_like(rho, 1.0), eos=eos,
                )
                return solver.stable_dt(st)

            return Runtime(nranks=2).run(main)[0]

        assert dt_for(StiffenedGas(gamma=1.4, p_inf=10.0)) < dt_for(
            IdealGas(gamma=1.4)
        )
