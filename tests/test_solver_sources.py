"""Source terms: nozzling (multiphase coupling) and body forces."""

import numpy as np
import pytest

from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import (
    CMTSolver,
    ENERGY,
    MX,
    RHO,
    SolverConfig,
    uniform_state,
)
from repro.solver.sources import (
    combine_sources,
    gaussian_bed,
    make_body_force,
    make_nozzling_source,
)

MESH = BoxMesh(shape=(4, 2, 2), n=5)
PART = Partition(MESH, proc_shape=(2, 1, 1))


def node_coords(rank):
    return np.stack(
        [MESH.element_nodes(ec) for ec in PART.local_elements(rank)], axis=1
    )


class TestNozzlingSource:
    def test_uniform_phi_gives_zero_source(self):
        st = uniform_state(4, 5, p=2.0)
        phi = np.full((4, 5, 5, 5), 0.2)
        src = make_nozzling_source(phi, jac=(2.0, 2.0, 2.0), eos=st.eos)
        np.testing.assert_allclose(src(st.u), 0.0, atol=1e-10)

    def test_momentum_gets_minus_p_grad_phi(self):
        """Linear phi in x: source = -p * slope on the x-momentum."""
        n = 5
        mesh = BoxMesh(shape=(2, 1, 1), n=n, lengths=(2.0, 1.0, 1.0))
        part = Partition(mesh, proc_shape=(1, 1, 1))
        coords = np.stack(
            [mesh.element_nodes(ec) for ec in part.local_elements(0)], axis=1
        )
        phi = 0.1 * coords[0] / 2.0  # slope 0.05 in x
        st = uniform_state(part.nel_local, n, p=3.0)
        src = make_nozzling_source(phi, jac=mesh.jacobian, eos=st.eos)
        s = src(st.u)
        np.testing.assert_allclose(s[RHO], 0.0, atol=1e-12)
        np.testing.assert_allclose(s[ENERGY], 0.0, atol=1e-12)
        np.testing.assert_allclose(s[MX], -3.0 * 0.05, atol=1e-9)
        np.testing.assert_allclose(s[MX + 1], 0.0, atol=1e-9)

    def test_validation(self):
        from repro.solver import IdealGas

        with pytest.raises(ValueError, match="volume fraction"):
            make_nozzling_source(
                np.full((1, 4, 4, 4), 1.5), (1, 1, 1), IdealGas()
            )
        with pytest.raises(ValueError, match="phi"):
            make_nozzling_source(np.zeros((4, 4, 4)), (1, 1, 1), IdealGas())

    def test_end_to_end_accelerates_gas_out_of_the_bed(self):
        """A particle bed in quiescent gas pushes gas away (nozzling)."""

        def main(comm):
            coords = node_coords(comm.rank)
            phi = gaussian_bed(
                coords, center=(0.5, 0.5, 0.5), width=0.15, peak=0.3
            )
            st = uniform_state(PART.nel_local, MESH.n)
            solver = CMTSolver(
                comm, PART,
                config=SolverConfig(gs_method="pairwise"),
            )
            solver.config.source = make_nozzling_source(
                phi, jac=MESH.jacobian, eos=st.eos
            )
            mass0 = solver.integrate(st.u[RHO])
            dt = solver.stable_dt(st)
            st = solver.run(st, nsteps=20, dt=dt)
            mass1 = solver.integrate(st.u[RHO])
            vmax = float(np.max(np.abs(st.velocity())))
            return abs(mass1 - mass0), vmax, st.is_physical()

        res = Runtime(nranks=2).run(main)
        dm, vmax, ok = res[0]
        assert ok
        assert dm < 1e-10          # mass still conserved
        assert vmax > 1e-4         # the bed stirred the gas


class TestBodyForce:
    def test_shape_and_values(self):
        st = uniform_state(2, 5, rho=2.0, vel=(1.0, 0.0, 0.0))
        src = make_body_force((0.0, -9.8, 0.0))
        s = src(st.u)
        np.testing.assert_allclose(s[MX + 1], -19.6)
        np.testing.assert_allclose(s[ENERGY], 0.0, atol=1e-12)  # v_y = 0
        src_x = make_body_force((2.0, 0.0, 0.0))
        s2 = src_x(st.u)
        np.testing.assert_allclose(s2[ENERGY], 2.0 * 2.0)  # m_x * g_x

    def test_validation(self):
        with pytest.raises(ValueError):
            make_body_force((1.0, 2.0))

    def test_momentum_grows_linearly(self):
        def main(comm):
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            solver.config.source = make_body_force((0.5, 0.0, 0.0))
            st = uniform_state(PART.nel_local, MESH.n)
            m0 = solver.integrate(st.u[MX])
            dt = 1e-3
            st = solver.run(st, nsteps=10, dt=dt)
            m1 = solver.integrate(st.u[MX])
            mass = solver.integrate(st.u[RHO])
            return m0, m1, mass, 10 * dt

        m0, m1, mass, t = Runtime(nranks=2).run(main)[0]
        # d/dt (total momentum) = g * total mass, exactly for const rho.
        assert (m1 - m0) == pytest.approx(0.5 * mass * t, rel=1e-6)


class TestCombineAndBed:
    def test_combine_sums(self):
        st = uniform_state(1, 5, rho=1.0)
        a = make_body_force((1.0, 0.0, 0.0))
        b = make_body_force((0.0, 2.0, 0.0))
        s = combine_sources(a, b)(st.u)
        np.testing.assert_allclose(s[MX], 1.0)
        np.testing.assert_allclose(s[MX + 1], 2.0)

    def test_combine_requires_one(self):
        with pytest.raises(ValueError):
            combine_sources()

    def test_gaussian_bed_range_and_peak(self):
        coords = node_coords(0)
        phi = gaussian_bed(coords, (0.5, 0.5, 0.5), width=0.2, peak=0.25)
        assert phi.min() >= 0.0
        assert phi.max() <= 0.25 + 1e-12
        assert phi.max() > 0.2  # a node lands near the centre

    def test_gaussian_bed_periodic_wrap(self):
        coords = node_coords(0)
        near_edge = gaussian_bed(coords, (0.01, 0.5, 0.5), width=0.1)
        wrapped = gaussian_bed(coords, (0.99, 0.5, 0.5), width=0.1)
        # Centres 0.01 and 0.99 are 0.02 apart through the boundary:
        # the fields must be very similar.
        assert np.max(np.abs(near_edge - wrapped)) < 0.05

    def test_gaussian_bed_validation(self):
        with pytest.raises(ValueError):
            gaussian_bed(node_coords(0), (0, 0, 0), 0.1, peak=1.0)
