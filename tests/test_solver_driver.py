"""Integration tests of the parallel DG Euler solver."""

import numpy as np
import pytest

from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import (
    CMTSolver,
    RHO,
    SolverConfig,
    from_primitives,
    uniform_state,
)

MESH = BoxMesh(shape=(4, 2, 2), n=5, lengths=(2.0, 1.0, 1.0))
PART = Partition(MESH, proc_shape=(2, 1, 1))


def run_solver(nranks, fn, part=PART):
    return Runtime(nranks=nranks).run(fn)


class TestFreestreamPreservation:
    @pytest.mark.parametrize("gs_method", ["pairwise", "crystal"])
    def test_constant_state_is_steady(self, gs_method):
        def main(comm):
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method=gs_method)
            )
            st = uniform_state(
                PART.nel_local, MESH.n, rho=1.3, vel=(0.4, -0.2, 0.1), p=1.7
            )
            u0 = st.u.copy()
            st = solver.run(st, nsteps=4, dt=1e-3)
            return float(np.max(np.abs(st.u - u0)))

        errs = run_solver(2, main)
        assert max(errs) < 1e-12

    def test_central_flux_also_preserves(self):
        def main(comm):
            solver = CMTSolver(
                comm, PART,
                config=SolverConfig(
                    gs_method="pairwise", flux_scheme="central"
                ),
            )
            st = uniform_state(PART.nel_local, MESH.n, vel=(1.0, 1.0, 1.0))
            u0 = st.u.copy()
            st = solver.run(st, nsteps=3, dt=1e-3)
            return float(np.max(np.abs(st.u - u0)))

        assert max(run_solver(2, main)) < 1e-12


class TestConservation:
    def test_all_invariants_conserved(self):
        def main(comm):
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            coords = np.stack(
                [MESH.element_nodes(ec)
                 for ec in PART.local_elements(comm.rank)],
                axis=1,
            )
            x, y = coords[0], coords[1]
            rho = 1.0 + 0.1 * np.sin(2 * np.pi * x) * np.cos(2 * np.pi * y)
            vel = np.zeros((3,) + rho.shape)
            vel[0] = 0.2
            p = 1.0 + 0.05 * np.cos(2 * np.pi * x)
            st = from_primitives(rho, vel, p)
            before = solver.conserved_totals(st)
            dt = solver.stable_dt(st)
            st = solver.run(st, nsteps=20, dt=dt)
            after = solver.conserved_totals(st)
            return before, after, st.is_physical()

        res = run_solver(2, main)
        before, after, physical = res[0]
        assert physical
        for key in before:
            assert after[key] == pytest.approx(before[key], abs=1e-10), key

    def test_monitoring_populates_stats(self):
        def main(comm):
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            st = uniform_state(PART.nel_local, MESH.n)
            solver.run(st, nsteps=4, dt=1e-3, monitor_every=2)
            return (
                solver.stats.steps,
                len(solver.stats.mass_history),
                solver.stats.mass_history,
            )

        steps, nmon, masses = run_solver(2, main)[0]
        assert steps == 4
        assert nmon == 2
        assert masses[0] == pytest.approx(masses[1], rel=1e-12)


class TestAcousticPulse:
    def test_pulse_decays_physically_and_propagates(self):
        """A small pressure pulse spreads; LF flux dissipates slightly."""

        def main(comm):
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            coords = np.stack(
                [MESH.element_nodes(ec)
                 for ec in PART.local_elements(comm.rank)],
                axis=1,
            )
            x = coords[0]
            eps = 1e-3
            bump = np.exp(-60.0 * (x - 1.0) ** 2)
            rho = 1.0 + eps * bump
            p = 1.0 + 1.4 * eps * bump
            st = from_primitives(rho, np.zeros((3,) + rho.shape), p)
            peak0_local = float(np.max(np.abs(st.u[RHO] - 1.0)))
            dt = solver.stable_dt(st)
            st = solver.run(st, nsteps=40, dt=dt)
            peak1_local = float(np.max(np.abs(st.u[RHO] - 1.0)))
            return peak0_local, peak1_local, st.is_physical(), 40 * dt

        res = run_solver(2, main)
        peak0 = max(r[0] for r in res)
        peak1 = max(r[1] for r in res)
        assert all(r[2] for r in res)
        # The pulse splits into two travelling waves: peak must drop,
        # but the field must not blow up or vanish.
        assert 0.05 * peak0 < peak1 < 1.01 * peak0


class TestSolverConstraintChecks:
    def test_nonperiodic_rejected(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=4, periodic=(False, True, True))
        part = Partition(mesh, proc_shape=(1, 1, 1))

        def main(comm):
            CMTSolver(comm, part)

        with pytest.raises(Exception, match="periodic"):
            Runtime(nranks=1).run(main)

    def test_rank_count_mismatch(self):
        def main(comm):
            CMTSolver(comm, PART)  # PART wants 2 ranks

        with pytest.raises(Exception, match="ranks"):
            Runtime(nranks=1).run(main)

    def test_autotune_runs_when_no_method_given(self):
        def main(comm):
            solver = CMTSolver(comm, PART, config=SolverConfig())
            return solver.face_handle.method

        methods = run_solver(2, main)
        assert methods[0] in ("pairwise", "crystal", "allreduce")
        assert len(set(methods)) == 1


class TestDeterminism:
    def test_same_run_same_bits(self):
        def main(comm):
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            st = uniform_state(PART.nel_local, MESH.n, vel=(0.3, 0.0, 0.0))
            st.u[RHO] += 1e-3 * np.sin(np.arange(st.u[RHO].size)).reshape(
                st.u[RHO].shape
            )
            st = solver.run(st, nsteps=5, dt=5e-4)
            return st.u.copy(), comm.time()

        r1 = run_solver(2, main)
        r2 = run_solver(2, main)
        for (u1, t1), (u2, t2) in zip(r1, r2):
            np.testing.assert_array_equal(u1, u2)
            assert t1 == t2  # virtual time deterministic too
