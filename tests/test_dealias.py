"""Dealiasing map/map-back between coarse and fine GLL grids."""

import numpy as np
import pytest

from repro.kernels.dealias import (
    dealias_flops,
    roundtrip,
    shapes,
    to_coarse,
    to_fine,
)
from repro.kernels.gll import gll_points


def poly_field(n, nel=2):
    x = np.asarray(gll_points(n))
    r = x[:, None, None]
    s = x[None, :, None]
    t = x[None, None, :]
    u = 1.0 + r + r * s - t**2 + 0.5 * r * s * t
    return np.broadcast_to(u, (nel, n, n, n)).copy()


class TestToFine:
    def test_shape(self):
        u = np.zeros((3, 4, 4, 4))
        v = to_fine(u, 4)
        assert v.shape == (3, 6, 6, 6)

    def test_explicit_fine_order(self):
        u = np.zeros((1, 4, 4, 4))
        assert to_fine(u, 4, m=10).shape == (1, 10, 10, 10)

    def test_preserves_constants(self):
        u = np.full((2, 5, 5, 5), 3.25)
        np.testing.assert_allclose(to_fine(u, 5), 3.25, atol=1e-12)

    def test_polynomial_values_exact(self):
        """Interpolation of poly data reproduces it at fine nodes."""
        n, m = 5, 8
        u = poly_field(n)
        v = to_fine(u, n, m)
        xf = np.asarray(gll_points(m))
        r = xf[:, None, None]
        s = xf[None, :, None]
        t = xf[None, None, :]
        expect = 1.0 + r + r * s - t**2 + 0.5 * r * s * t
        np.testing.assert_allclose(v[0], expect, atol=1e-11)

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            to_fine(np.zeros((1, 4, 4, 5)), 4)


class TestRoundtrip:
    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_exact_on_polynomials(self, n):
        u = poly_field(n) if n >= 4 else np.full((2, n, n, n), 2.0)
        np.testing.assert_allclose(roundtrip(u, n), u, atol=1e-10)

    def test_random_data_not_exact_but_close_in_norm(self):
        """Non-polynomial-consistent data changes, but boundedly."""
        rng = np.random.default_rng(0)
        n = 6
        u = rng.standard_normal((2, n, n, n))
        v = roundtrip(u, n)
        assert v.shape == u.shape
        assert np.linalg.norm(v) < 10 * np.linalg.norm(u)

    def test_coarse_then_fine_projection_idempotent(self):
        """to_coarse(to_fine(.)) applied twice equals once (projection)."""
        rng = np.random.default_rng(1)
        n = 5
        u = rng.standard_normal((1, n, n, n))
        once = roundtrip(u, n)
        twice = roundtrip(once, n)
        np.testing.assert_allclose(twice, once, atol=1e-10)


class TestOutWorkspace:
    """``out=``/``work=`` paths are bitwise identical to allocating."""

    @pytest.mark.parametrize("n", [5, 8, 20])
    def test_to_fine_out_bitwise(self, n):
        from repro.kernels.dealias import dealias_order
        from repro.kernels.workspace import Workspace

        rng = np.random.default_rng(n)
        u = rng.standard_normal((3, n, n, n))
        m = dealias_order(n)
        ref = to_fine(u, n)
        out = np.empty((3, m, m, m))
        work = Workspace()
        res = to_fine(u, n, out=out, work=work)
        assert res is out
        assert np.array_equal(out, ref)
        # second call through the same workspace: same answer
        assert np.array_equal(to_fine(u, n, out=out, work=work), ref)

    def test_roundtrip_workspace_bitwise(self):
        from repro.kernels.workspace import Workspace

        rng = np.random.default_rng(9)
        u = rng.standard_normal((2, 6, 6, 6))
        ref = roundtrip(u, 6)
        work = Workspace()
        got = roundtrip(u, 6, out=np.empty_like(u), work=work)
        assert np.array_equal(got, ref)

    def test_out_validation(self):
        u = np.zeros((1, 5, 5, 5))
        with pytest.raises(ValueError, match="shape"):
            to_fine(u, 5, out=np.empty((1, 5, 5, 5)))
        with pytest.raises(ValueError, match="C-contiguous"):
            to_coarse(
                np.zeros((1, 8, 8, 8)), 5,
                out=np.empty((1, 5, 10, 5))[:, :, ::2, :],
            )

    def test_generated_variant_matches_fused(self):
        rng = np.random.default_rng(4)
        u = rng.standard_normal((2, 6, 6, 6))
        assert np.array_equal(
            to_fine(u, 6, variant="generated"), to_fine(u, 6)
        )

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError, match="variant"):
            to_fine(np.zeros((1, 5, 5, 5)), 5, variant="magic")


class TestHelpers:
    def test_shapes(self):
        assert shapes(4) == (4, 6)
        assert shapes(4, 11) == (4, 11)

    def test_flops_positive_and_scales(self):
        assert dealias_flops(8, nel=2) == pytest.approx(
            2 * dealias_flops(8, nel=1)
        )

    def test_to_coarse_shape(self):
        v = np.zeros((2, 9, 9, 9))
        assert to_coarse(v, 6, 9).shape == (2, 6, 6, 6)
