"""The derivative kernel: variant agreement, exactness, properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import derivatives as dk
from repro.kernels.gll import gll_points
from repro.kernels.operators import derivative_matrix


def field(nel, n, seed=0):
    return np.random.default_rng(seed).standard_normal((nel, n, n, n))


class TestVariantAgreement:
    @pytest.mark.parametrize("direction", ["r", "s", "t"])
    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_all_variants_agree(self, direction, n):
        u = field(4, n)
        d = np.asarray(derivative_matrix(n))
        ref = dk.derivative(u, d, direction, "basic")
        for variant in ("fused", "einsum"):
            out = dk.derivative(u, d, direction, variant)
            np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)

    def test_grad_returns_three(self):
        u = field(2, 4)
        d = np.asarray(derivative_matrix(4))
        ur, us, ut = dk.grad(u, d)
        np.testing.assert_allclose(ur, dk.dudr(u, d))
        np.testing.assert_allclose(us, dk.duds(u, d))
        np.testing.assert_allclose(ut, dk.dudt(u, d))


class TestExactness:
    """The collocation derivative is exact on polynomials < degree N."""

    @pytest.mark.parametrize("variant", ["basic", "fused", "einsum"])
    def test_polynomial_in_each_direction(self, variant):
        n = 6
        x = np.asarray(gll_points(n))
        d = np.asarray(derivative_matrix(n))
        # u(r,s,t) = r^3 s^2 + t^4
        r = x[:, None, None]
        s = x[None, :, None]
        t = x[None, None, :]
        u = (r**3 * s**2 + t**4 + 0 * r)[None]
        np.testing.assert_allclose(
            dk.dudr(u, d, variant), (3 * r**2 * s**2 + 0 * t)[None], atol=1e-10
        )
        np.testing.assert_allclose(
            dk.duds(u, d, variant), (2 * r**3 * s + 0 * t)[None], atol=1e-10
        )
        np.testing.assert_allclose(
            dk.dudt(u, d, variant), (4 * t**3 + 0 * r * s)[None], atol=1e-10
        )

    @pytest.mark.parametrize("direction", ["r", "s", "t"])
    def test_constant_has_zero_derivative(self, direction):
        n = 5
        d = np.asarray(derivative_matrix(n))
        u = np.full((3, n, n, n), 7.5)
        np.testing.assert_allclose(
            dk.derivative(u, d, direction, "fused"), 0.0, atol=1e-12
        )


class TestProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_linearity(self, seed):
        rng = np.random.default_rng(seed)
        n = 4
        d = np.asarray(derivative_matrix(n))
        u = rng.standard_normal((2, n, n, n))
        v = rng.standard_normal((2, n, n, n))
        a, b = rng.standard_normal(2)
        lhs = dk.dudr(a * u + b * v, d)
        rhs = a * dk.dudr(u, d) + b * dk.dudr(v, d)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10, atol=1e-10)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_directions_commute(self, seed):
        """Mixed partials commute (operators act on different axes)."""
        rng = np.random.default_rng(seed)
        n = 4
        d = np.asarray(derivative_matrix(n))
        u = rng.standard_normal((1, n, n, n))
        np.testing.assert_allclose(
            dk.duds(dk.dudr(u, d), d),
            dk.dudr(dk.duds(u, d), d),
            rtol=1e-9, atol=1e-9,
        )

    def test_identity_matrix_is_noop(self):
        n = 5
        u = field(3, n)
        eye = np.eye(n)
        for direction in "rst":
            np.testing.assert_array_equal(
                dk.derivative(u, eye, direction, "fused"), u
            )


class TestValidation:
    def test_bad_field_shape(self):
        d = np.asarray(derivative_matrix(4))
        with pytest.raises(ValueError):
            dk.dudr(np.zeros((2, 4, 4, 5)), d)
        with pytest.raises(ValueError):
            dk.dudr(np.zeros((4, 4, 4)), d)

    def test_mismatched_matrix(self):
        with pytest.raises(ValueError):
            dk.dudr(np.zeros((1, 4, 4, 4)), np.eye(5))

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown derivative"):
            dk.derivative(np.zeros((1, 4, 4, 4)), np.eye(4), "r", "magic")

    def test_unknown_direction(self):
        with pytest.raises(ValueError, match="unknown derivative"):
            dk.derivative(np.zeros((1, 4, 4, 4)), np.eye(4), "x", "fused")


class TestWorkCounts:
    def test_flops_formula(self):
        assert dk.flops(5, 100) == 2 * 5**4 * 100
        assert dk.flops(5, 100, ndirections=3) == 6 * 5**4 * 100

    def test_mem_bytes_formula(self):
        assert dk.mem_bytes(10, 7) == 16 * 1000 * 7
