"""Kernel IR: contraction programs, passes, codegen, autotune, library.

The heart of this suite is the bitwise acceptance matrix: for every
registered program and every N in the paper's 5..25 sweep, each
generated schedule must be bit-for-bit identical to the hand-written
variant of the same loop structure (``gemm`` ≡ ``fused``, ``plane`` ≡
``basic``, ``einsum`` ≡ ``einsum``) — codegen introduces *zero*
numerical change.  Schedules with a genuinely different contraction
order (``tbatch``, ``gemm_rev``) are held to a normwise 1e-10 screen
instead, the same screen the autotuner applies to candidates.
"""

import json
import os

import numpy as np
import pytest

from repro import kir
from repro.autotune import best_time, host_fingerprint, time_trials
from repro.kernels import dealias as dl
from repro.kernels import derivatives as dk
from repro.kernels.operators import interpolation_matrix
from repro.kernels.workspace import Workspace

ALL_N = range(5, 26)


def close(a, b, rtol=1e-10):
    """Normwise comparison (elementwise rtol is meaningless at zeros)."""
    return np.abs(np.asarray(a) - np.asarray(b)).max() <= (
        rtol * np.abs(np.asarray(b)).max()
    )


def field(n, nel=2, seed=None):
    rng = np.random.default_rng(100 * n if seed is None else seed)
    return rng.standard_normal((nel, n, n, n))


def dmatrix(n):
    return np.random.default_rng(7 * n).standard_normal((n, n))


# ---------------------------------------------------------------------
# IR layer
# ---------------------------------------------------------------------


class TestIR:
    def test_programs_registered(self):
        assert set(kir.PROGRAMS) == {
            "dudr", "duds", "dudt", "grad", "interp_fine", "interp_coarse"
        }

    @pytest.mark.parametrize("name", ["dudr", "duds", "dudt"])
    def test_derivative_flops_match_hand_formula(self, name):
        for n in ALL_N:
            prog = kir.build_program(name, n)
            assert kir.program_flops(prog, 9) == dk.flops(n, 9)
            assert kir.program_mem_bytes(prog, 9) == dk.mem_bytes(n, 9)

    def test_grad_counts_are_three_directions(self):
        prog = kir.build_program("grad", 8)
        assert kir.program_flops(prog, 4) == dk.flops(8, 4, ndirections=3)
        # per-contraction streamed traffic: 3 x (read u + write out),
        # the same model as the hand formula's ndirections=3
        assert kir.program_mem_bytes(prog, 4) == dk.mem_bytes(
            8, 4, ndirections=3
        )

    def test_interp_flops_match_dealias_formula(self):
        for n in (5, 10, 17):
            fine = kir.build_program("interp_fine", n)
            coarse = kir.build_program("interp_coarse", n)
            pair = kir.program_flops(fine, 3) + kir.program_flops(coarse, 3)
            assert pair == dl.dealias_flops(n, nel=3)

    def test_build_program_cached(self):
        assert kir.build_program("dudr", 9) is kir.build_program("dudr", 9)

    def test_contract_spec(self):
        prog = kir.build_program("duds", 6)
        (op,) = prog.body
        assert op.spec == "jm,eimk->eijk"

    def test_unknown_program_raises(self):
        with pytest.raises(KeyError):
            kir.build_program("nope", 5)

    def test_program_validation_rejects_unknown_reads(self):
        t = kir.tensor
        with pytest.raises(ValueError):
            kir.Program(
                name="bad",
                inputs=(t("u", "eijk", i=4, j=4, k=4),),
                outputs=(t("o", "eijk", i=4, j=4, k=4),),
                body=(
                    kir.Contract(
                        out=t("o", "eijk", i=4, j=4, k=4),
                        a=t("W", "im", i=4, m=4),  # W never declared
                        b=t("u", "emjk", m=4, j=4, k=4),
                        sum_axes=("m",),
                    ),
                ),
                params={"n": 4},
            )


# ---------------------------------------------------------------------
# passes / schedules
# ---------------------------------------------------------------------


class TestSchedules:
    def test_default_schedule_is_first_candidate(self):
        assert next(iter(kir.SCHEDULES)) == kir.DEFAULT_SCHEDULE

    def test_derivative_schedules(self):
        prog = kir.build_program("dudr", 6)
        scheds = kir.applicable_schedules(prog)
        assert "gemm" in scheds and "plane" in scheds and "einsum" in scheds

    def test_tbatch_not_applicable_to_dudt(self):
        # dudt contracts the last axis: already a right-apply GEMM, no
        # middle-axis obstruction to transpose away.
        prog = kir.build_program("dudt", 6)
        assert "tbatch" not in kir.applicable_schedules(prog)

    def test_tbatch_applicable_to_duds(self):
        prog = kir.build_program("duds", 6)
        assert "tbatch" in kir.applicable_schedules(prog)

    def test_gemm_rev_only_for_chains(self):
        assert "gemm_rev" not in kir.applicable_schedules(
            kir.build_program("dudr", 6)
        )
        assert "gemm_rev" in kir.applicable_schedules(
            kir.build_program("interp_fine", 6)
        )

    def test_unknown_schedule_raises(self):
        with pytest.raises(KeyError):
            kir.schedule(kir.build_program("dudr", 5), "warp")

    def test_describe_mentions_every_op(self):
        sched = kir.schedule(kir.build_program("interp_fine", 5), "gemm")
        text = sched.describe()
        assert "interp_fine" in text and "gemm" in text


# ---------------------------------------------------------------------
# lowering / codegen
# ---------------------------------------------------------------------


class TestLowering:
    def test_source_attached_and_cached(self):
        prog = kir.build_program("dudr", 7)
        k1 = kir.lowered_kernel(prog, "gemm")
        k2 = kir.lowered_kernel(prog, "gemm")
        assert k1 is k2
        assert "np.matmul" in k1.source
        assert k1.fn.__kir_source__ == k1.source

    def test_unknown_lowering_raises(self):
        with pytest.raises(KeyError):
            kir.lower(kir.schedule(kir.build_program("dudr", 5), "gemm"),
                      lowering="cuda")

    def test_dump_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KIR_DUMP", str(tmp_path))
        sched = kir.schedule(kir.build_program("duds", 11), "plane")
        kir.lower(sched)
        files = list(tmp_path.glob("*.py"))
        assert len(files) == 1
        text = files[0].read_text()
        assert "duds" in text and "def " in text

    def test_workspace_temps_reused(self):
        prog = kir.build_program("interp_fine", 6)
        fn = kir.lowered_kernel(prog, "gemm").fn
        u = field(6)
        J = np.asarray(interpolation_matrix(6, dl.dealias_order(6)))
        work = Workspace()
        a = fn(u, J, work=work).copy()
        b = fn(u, J, work=work)
        assert np.array_equal(a, b)
        # the two intermediates came from the pool under kir: keys
        keys = {k[0] for k in getattr(work, "_buffers", {})}
        if keys:  # only introspect if the pool exposes its dict
            assert any(str(k).startswith("kir:interp_fine") for k in keys)


# ---------------------------------------------------------------------
# the bitwise acceptance matrix
# ---------------------------------------------------------------------


class TestBitwiseMatrix:
    """Generated == hand-written, bit for bit, N = 5..25."""

    @pytest.mark.parametrize("direction", ["r", "s", "t"])
    def test_derivative_programs(self, direction):
        for n in ALL_N:
            u, D = field(n), dmatrix(n)
            prog = kir.build_program(kir.direction_program(direction), n)
            refs = {
                "gemm": dk.derivative(u, D, direction, "fused"),
                "plane": dk.derivative(u, D, direction, "basic"),
                "einsum": dk.derivative(u, D, direction, "einsum"),
            }
            for s in kir.applicable_schedules(prog):
                got = kir.lowered_kernel(prog, s).fn(u, D)
                if s in refs:
                    assert np.array_equal(got, refs[s]), (n, direction, s)
                else:
                    assert close(got, refs["plane"]), (n, direction, s)

    def test_grad_program(self):
        for n in ALL_N:
            u, D = field(n), dmatrix(n)
            prog = kir.build_program("grad", n)
            refs = {
                "gemm": dk.grad(u, D, variant="fused"),
                "plane": dk.grad(u, D, variant="basic"),
                "einsum": dk.grad(u, D, variant="einsum"),
            }
            for s in kir.applicable_schedules(prog):
                got = kir.lowered_kernel(prog, s).fn(u, D)
                if s in refs:
                    assert all(
                        np.array_equal(g, r)
                        for g, r in zip(got, refs[s])
                    ), (n, "grad", s)
                else:
                    assert all(
                        close(g, r) for g, r in zip(got, refs["plane"])
                    ), (n, "grad", s)

    def test_interp_programs(self):
        for n in ALL_N:
            u = field(n)
            m = dl.dealias_order(n)
            J = np.asarray(interpolation_matrix(n, m))
            Jc = np.asarray(interpolation_matrix(m, n))
            fine_ref = dl.to_fine(u, n)
            coarse_ref = dl.to_coarse(fine_ref, n)
            pf = kir.build_program("interp_fine", n)
            pc = kir.build_program("interp_coarse", n)
            for s in kir.applicable_schedules(pf):
                got = kir.lowered_kernel(pf, s).fn(u, J)
                if s == "gemm":
                    assert np.array_equal(got, fine_ref), (n, s)
                else:
                    assert close(got, fine_ref), (n, s)
            got = kir.lowered_kernel(pc, "gemm").fn(fine_ref, Jc)
            assert np.array_equal(got, coarse_ref), n

    def test_out_path_bitwise_matches_allocating(self):
        for n in (5, 12, 20, 25):
            u, D = field(n), dmatrix(n)
            prog = kir.build_program("dudr", n)
            for s in kir.applicable_schedules(prog):
                fn = kir.lowered_kernel(prog, s).fn
                out = np.empty_like(u)
                fn(u, D, out=out)
                assert np.array_equal(out, fn(u, D)), (n, s)


# ---------------------------------------------------------------------
# autotune + persistent cache
# ---------------------------------------------------------------------


@pytest.fixture
def cache_path(tmp_path):
    return str(tmp_path / "kernel-autotune.json")


def quick_tune(prog, nel, path, **kw):
    kw.setdefault("repeats", 1)
    kw.setdefault("trials", 1)
    return kir.tune_program(prog, nel, cache_path=path, **kw)


class TestAutotune:
    def test_cold_then_warm(self, cache_path):
        kir.CACHE_STATS.reset()
        prog = kir.build_program("dudr", 8)
        cold = quick_tune(prog, 16, cache_path)
        assert not cold.from_cache
        assert kir.CACHE_STATS.misses == 1 and kir.CACHE_STATS.hits == 0
        assert os.path.exists(cache_path)
        warm = quick_tune(prog, 16, cache_path)
        assert warm.from_cache
        assert warm.schedule == cold.schedule
        assert kir.CACHE_STATS.hits == 1 and kir.CACHE_STATS.misses == 1

    def test_winner_beats_or_ties_candidates(self, cache_path):
        prog = kir.build_program("duds", 10)
        res = quick_tune(prog, 16, cache_path, repeats=2, trials=2)
        assert res.timings[res.schedule] == min(res.timings.values())
        assert set(res.checked) >= {"gemm"}

    def test_cache_file_schema(self, cache_path):
        prog = kir.build_program("dudt", 6)
        quick_tune(prog, 8, cache_path)
        with open(cache_path) as fh:
            data = json.load(fh)
        assert data["version"] == 1
        entry = data["hosts"][host_fingerprint()][
            kir.cache_key("dudt", 6, 8)
        ]
        assert entry["schedule"] in kir.SCHEDULES
        assert entry["timings"][entry["schedule"]] > 0

    def test_corrupt_cache_degrades_gracefully(self, cache_path):
        prog = kir.build_program("dudr", 6)
        with open(cache_path, "w") as fh:
            fh.write("{ definitely not json")
        kir.CACHE_STATS.reset()
        with pytest.warns(RuntimeWarning, match="unreadable"):
            res = quick_tune(prog, 8, cache_path)
        assert not res.from_cache
        assert kir.CACHE_STATS.load_errors >= 1
        # and the retune healed the file
        assert kir.load_cache(cache_path) != {}

    def test_stale_version_degrades_gracefully(self, cache_path):
        with open(cache_path, "w") as fh:
            json.dump({"version": 99, "hosts": {}}, fh)
        with pytest.warns(RuntimeWarning, match="unsupported"):
            assert kir.load_cache(cache_path) == {}

    def test_different_nel_is_a_different_key(self, cache_path):
        kir.CACHE_STATS.reset()
        prog = kir.build_program("dudr", 6)
        quick_tune(prog, 8, cache_path)
        quick_tune(prog, 24, cache_path)
        assert kir.CACHE_STATS.misses == 2

    def test_env_var_controls_default_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert kir.default_cache_path() == str(
            tmp_path / "kernel-autotune.json"
        )

    def test_candidate_screen_excludes_wrong_results(self, cache_path):
        # A broken lowering must be screened out, not tuned in.
        prog = kir.build_program("dudr", 6)
        real = kir.lowered_kernel(prog, "plane")
        broken = kir.LoweredKernel(
            program="dudr", schedule="plane", lowering="numpy",
            fn=lambda u, D, out=None, work=None: np.zeros_like(u),
            source="", )
        import importlib

        lower_mod = importlib.import_module("repro.kir.lower")
        key = ("dudr", (("n", 6),), "plane", "numpy")
        saved = lower_mod._KERNEL_CACHE.get(key)
        lower_mod._KERNEL_CACHE[key] = broken
        try:
            with pytest.warns(RuntimeWarning, match="correctness"):
                res = quick_tune(prog, 8, cache_path, use_cache=False)
            assert "plane" not in res.checked
            assert res.schedule != "plane"
        finally:
            if saved is not None:
                lower_mod._KERNEL_CACHE[key] = saved
            else:
                del lower_mod._KERNEL_CACHE[key]
        assert np.array_equal(
            kir.lowered_kernel(prog, "plane").fn(field(6), dmatrix(6)),
            real.fn(field(6), dmatrix(6)),
        )


# ---------------------------------------------------------------------
# library + kernels-layer dispatch
# ---------------------------------------------------------------------


class TestLibrary:
    def test_generated_resolves_default_schedule(self):
        lib = kir.KernelLibrary(use_cache=False)
        k = lib.resolve("dudr", 8, 16, variant="generated")
        assert k.schedule == kir.DEFAULT_SCHEDULE
        assert lib.resolve("dudr", 8, 16, variant="generated") is k

    def test_explicit_schedule_variant(self):
        lib = kir.KernelLibrary(use_cache=False)
        assert lib.resolve("dudr", 8, 16, variant="plane").schedule == "plane"

    def test_unknown_variant_raises(self):
        lib = kir.KernelLibrary(use_cache=False)
        with pytest.raises(ValueError, match="unknown kernel variant"):
            lib.resolve("dudr", 8, 16, variant="blazing")

    def test_auto_uses_tuner_and_memoizes(self, cache_path):
        lib = kir.KernelLibrary(cache_path=cache_path)
        kir.CACHE_STATS.reset()
        k1 = lib.resolve("dudt", 6, 8, variant="auto")
        k2 = lib.resolve("dudt", 6, 8, variant="auto")
        assert k1 is k2
        assert kir.CACHE_STATS.misses == 1  # tuned exactly once

    def test_schedules_introspection(self):
        lib = kir.KernelLibrary()
        assert "gemm" in lib.schedules("interp_fine", 6)


class TestDispatch:
    @pytest.mark.parametrize("variant", ["generated", "auto"])
    def test_derivative_matches_fused_bitwise(self, variant, cache_path,
                                              monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        for n in (5, 10, 20):
            u, D = field(n), dmatrix(n)
            ref = {
                d: dk.derivative(u, D, d, "fused") for d in "rst"
            }
            for d in "rst":
                got = dk.derivative(u, D, d, variant)
                if variant == "generated":
                    assert np.array_equal(got, ref[d]), (n, d)
                else:
                    assert close(got, ref[d]), (n, d)

    def test_grad_generated_single_program(self):
        u, D = field(9), dmatrix(9)
        gg = dk.grad(u, D, variant="generated")
        gf = dk.grad(u, D, variant="fused")
        assert all(np.array_equal(a, b) for a, b in zip(gg, gf))

    def test_generated_keeps_out_contract(self):
        u, D = field(6), dmatrix(6)
        with pytest.raises(ValueError, match="alias"):
            dk.dudr(u, D, variant="generated", out=u)
        with pytest.raises(ValueError, match="C-contiguous"):
            dk.dudr(u, D, variant="generated",
                    out=np.empty_like(u).transpose(0, 2, 1, 3))
        out = np.empty_like(u)
        res = dk.dudr(u, D, variant="generated", out=out)
        assert res is out

    def test_unknown_variant_error_lists_generated(self):
        u, D = field(5), dmatrix(5)
        with pytest.raises(ValueError, match="generated"):
            dk.dudr(u, D, variant="vectorized")

    def test_dealias_generated_bitwise(self):
        for n in (5, 12, 20):
            u = field(n)
            work = Workspace()
            ref = dl.to_fine(u, n)
            gen = dl.to_fine(u, n, variant="generated", work=work)
            assert np.array_equal(gen, ref), n
            back_ref = dl.to_coarse(ref, n)
            back_gen = dl.to_coarse(
                ref, n, variant="generated",
                out=np.empty_like(u), work=work,
            )
            assert np.array_equal(back_gen, back_ref), n

    def test_dealias_out_variants(self):
        u = field(7)
        n = 7
        m = dl.dealias_order(n)
        work = Workspace()
        ref = dl.to_fine(u, n)
        out = np.empty((u.shape[0], m, m, m))
        assert dl.to_fine(u, n, out=out, work=work) is out
        assert np.array_equal(out, ref)
        # contiguous view over the same buffer: the alias guard, not
        # the contiguity check, must fire
        alias_out = ref.reshape(-1)[: ref.shape[0] * n**3].reshape(
            ref.shape[0], n, n, n
        )
        with pytest.raises(ValueError, match="alias"):
            dl.to_coarse(ref, n, out=alias_out)
        with pytest.raises(ValueError, match="unknown dealias variant"):
            dl.to_fine(u, n, variant="loopy")
        rt_ref = dl.roundtrip(u, n)
        rt = dl.roundtrip(u, n, out=np.empty_like(u), work=work)
        assert np.array_equal(rt, rt_ref)


# ---------------------------------------------------------------------
# shared tuning helpers (repro.autotune)
# ---------------------------------------------------------------------


class TestSharedAutotune:
    def test_host_fingerprint_shape(self):
        fp = host_fingerprint()
        assert fp.count("/") == 2 and len(fp) > 2

    def test_time_trials_counts_calls(self):
        calls = []
        dt = time_trials(lambda: calls.append(1), trials=3, warmup=2)
        assert len(calls) == 5
        assert dt >= 0.0

    def test_time_trials_sync_called(self):
        syncs = []
        time_trials(lambda: None, trials=1, warmup=0,
                    sync=lambda: syncs.append(1))
        assert syncs  # barrier ran at least once

    def test_best_time_is_min_over_repeats(self):
        ticker = iter(range(100))

        def fake_timer():
            return float(next(ticker))

        dt = best_time(lambda: None, repeats=3, trials=1, warmup=0,
                       timer=fake_timer)
        assert dt >= 0.0


def _merge_worker(path, host, keys, barrier):
    """Child process: merge several entries after a common barrier."""
    from repro.kir.autotune import merge_entry

    barrier.wait()
    for key in keys:
        merge_entry(path, host, key, {"schedule": "gemm", "who": key})


class TestCacheConcurrency:
    def test_concurrent_writers_lose_no_entries(self, cache_path):
        """N processes merging distinct keys into one cache file must
        interleave, never clobber (the bare load->save race drops
        whole batches)."""
        import multiprocessing as mp

        from repro.kir.autotune import load_cache

        ctx = mp.get_context("fork")
        nprocs, per_proc = 4, 6
        barrier = ctx.Barrier(nprocs)
        procs = [
            ctx.Process(
                target=_merge_worker,
                args=(cache_path, f"host{p}",
                      [f"k{p}:{i}" for i in range(per_proc)], barrier),
            )
            for p in range(nprocs)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        hosts = load_cache(cache_path)
        total = sum(len(v) for v in hosts.values())
        assert total == nprocs * per_proc, hosts
        for p in range(nprocs):
            assert set(hosts[f"host{p}"]) == {
                f"k{p}:{i}" for i in range(per_proc)
            }

    def test_race_merge_counter(self, cache_path):
        """A snapshot older than the file's current contents counts as
        a detected (and merged) race."""
        from repro.kir.autotune import CACHE_STATS, load_cache, merge_entry

        CACHE_STATS.reset()
        merge_entry(cache_path, "h", "k1", {"schedule": "gemm"})
        stale_snapshot = {}  # believes the file is empty
        merge_entry(cache_path, "h", "k2", {"schedule": "gemm"},
                    known=stale_snapshot)
        assert CACHE_STATS.races_merged == 1
        assert set(load_cache(cache_path)["h"]) == {"k1", "k2"}
