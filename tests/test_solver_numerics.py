"""Numerical flux, flux divergence, and RK steppers."""

import numpy as np
import pytest

from repro.kernels import derivative_matrix, gll_points
from repro.solver import (
    central,
    cfl_dt,
    flux_divergence,
    get_scheme,
    get_stepper,
    gradient_physical,
    lax_friedrichs,
    step_euler,
    step_ssprk2,
    step_ssprk3,
)


class TestNumericalFlux:
    def test_central_average(self):
        fm, fp = np.array([1.0]), np.array([3.0])
        assert central(None, None, fm, fp)[0] == 2.0

    def test_lf_reduces_to_central_when_continuous(self):
        u = np.array([2.0])
        f = np.array([5.0])
        out = lax_friedrichs(u, u, f, f, lam=np.array([10.0]))
        assert out[0] == pytest.approx(5.0)

    def test_lf_dissipation_sign(self):
        um, up = np.array([0.0]), np.array([1.0])
        fm, fp = np.array([0.0]), np.array([0.0])
        out = lax_friedrichs(um, up, fm, fp, lam=np.array([2.0]))
        assert out[0] == pytest.approx(-1.0)  # -lam/2 (up-um)

    def test_symmetry_between_sides(self):
        """Both elements compute the same f* (conservation)."""
        rng = np.random.default_rng(0)
        um, up = rng.standard_normal(4), rng.standard_normal(4)
        fm, fp = rng.standard_normal(4), rng.standard_normal(4)
        lam = np.abs(rng.standard_normal(4))
        a = lax_friedrichs(um, up, fm, fp, lam)
        b = lax_friedrichs(up, um, fp, fm, -lam)  # other side's view
        np.testing.assert_allclose(a, b, rtol=1e-14)

    def test_get_scheme(self):
        assert get_scheme("central") is central
        assert get_scheme("lax_friedrichs") is lax_friedrichs
        with pytest.raises(ValueError):
            get_scheme("roe")


class TestFluxDivergence:
    def test_linear_flux_exact(self):
        """div(x, y, z) = 3 exactly."""
        n = 5
        x = np.asarray(gll_points(n))
        d = np.asarray(derivative_matrix(n))
        r = x[:, None, None]
        s = x[None, :, None]
        t = x[None, None, :]
        fx = np.broadcast_to(r, (2, n, n, n)).copy()
        fy = np.broadcast_to(s, (2, n, n, n)).copy()
        fz = np.broadcast_to(t, (2, n, n, n)).copy()
        div = flux_divergence(fx, fy, fz, d, jac=(1.0, 1.0, 1.0))
        np.testing.assert_allclose(div, 3.0, atol=1e-11)

    def test_jacobian_scaling(self):
        n = 4
        x = np.asarray(gll_points(n))
        d = np.asarray(derivative_matrix(n))
        fx = np.broadcast_to(x[:, None, None], (1, n, n, n)).copy()
        zero = np.zeros_like(fx)
        div = flux_divergence(fx, zero, zero, d, jac=(2.0, 1.0, 1.0))
        np.testing.assert_allclose(div, 2.0, atol=1e-12)

    def test_variants_agree(self):
        n = 4
        rng = np.random.default_rng(1)
        d = np.asarray(derivative_matrix(n))
        f = [rng.standard_normal((3, n, n, n)) for _ in range(3)]
        a = flux_divergence(*f, d, jac=(1.0, 2.0, 3.0), variant="fused")
        b = flux_divergence(*f, d, jac=(1.0, 2.0, 3.0), variant="basic")
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_gradient_physical(self):
        n = 5
        x = np.asarray(gll_points(n))
        d = np.asarray(derivative_matrix(n))
        u = np.broadcast_to(
            x[:, None, None] * x[None, :, None], (1, n, n, n)
        ).copy()  # u = r*s
        gx, gy, gz = gradient_physical(u, d, jac=(2.0, 3.0, 1.0))
        np.testing.assert_allclose(
            gx, 2.0 * np.broadcast_to(x[None, None, :, None], gx.shape),
            atol=1e-11,
        )
        np.testing.assert_allclose(gz, 0.0, atol=1e-11)


class TestRKSteppers:
    """Convergence order on u' = -u (exact: exp(-t))."""

    def _integrate(self, stepper, dt, t_end=1.0):
        u = np.array([1.0])
        steps = int(round(t_end / dt))
        for _ in range(steps):
            u = stepper(u, lambda v: -v, dt)
        return u[0]

    @pytest.mark.parametrize(
        "stepper,order",
        [(step_euler, 1), (step_ssprk2, 2), (step_ssprk3, 3)],
    )
    def test_convergence_order(self, stepper, order):
        exact = np.exp(-1.0)
        e1 = abs(self._integrate(stepper, 0.1) - exact)
        e2 = abs(self._integrate(stepper, 0.05) - exact)
        observed = np.log2(e1 / e2)
        assert observed == pytest.approx(order, abs=0.25)

    def test_get_stepper(self):
        assert get_stepper("euler") is step_euler
        assert get_stepper("ssprk3") is step_ssprk3
        with pytest.raises(ValueError):
            get_stepper("rk4")

    def test_linearity_preserved(self):
        """Steppers preserve array shape and dtype."""
        u = np.zeros((5, 2, 3, 3, 3))
        out = step_ssprk3(u, lambda v: v * 0.0, 0.1)
        assert out.shape == u.shape


class TestCflDt:
    def test_scaling(self):
        dt1 = cfl_dt(max_speed=1.0, dx_min=1.0, n=4)
        dt2 = cfl_dt(max_speed=2.0, dx_min=1.0, n=4)
        assert dt2 == pytest.approx(dt1 / 2)
        dt3 = cfl_dt(max_speed=1.0, dx_min=1.0, n=8)
        assert dt3 == pytest.approx(dt1 / 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            cfl_dt(max_speed=0.0, dx_min=1.0, n=4)
