"""Execution backends: procs and sockets vs the threads reference.

Every backend must be a drop-in replacement: same results, same
error/deadlock/crash semantics, and *identical* virtual-time and
profile numbers (they are pure functions of the machine model, never of
wall-clock scheduling).  These tests run the same jobs under all
backends and compare, and exercise the backend-specific machinery —
shared memory rings (including oversize spills) for procs, the socket
mesh / rendezvous / heartbeat path for sockets, exit-record
marshalling, process-safe abort, and the recovery loop (abort,
injected-crash recovery, checkpoint/restart, real rank kills).
"""

import os
import signal

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.mpi import (
    ANY_SOURCE,
    DeadlockError,
    MPIError,
    ProcsBackend,
    RankCrashError,
    Runtime,
    ThreadsBackend,
    available_backends,
    spmd,
)
from repro.mpi.backend import register_backend, resolve_backend
from repro.net import SocketBackend

BACKENDS = ("threads", "procs", "sockets")


class TestSelection:
    def test_available(self):
        assert available_backends() == ["procs", "sockets", "threads"]

    def test_resolve_name_and_instance(self):
        assert isinstance(resolve_backend("threads"), ThreadsBackend)
        assert isinstance(resolve_backend("procs"), ProcsBackend)
        assert isinstance(resolve_backend("sockets"), SocketBackend)
        inst = ProcsBackend(ring_capacity=1 << 16)
        assert resolve_backend(inst) is inst

    def test_register_backend(self):
        class Custom(ThreadsBackend):
            name = "custom-test"

        register_backend("custom-test", Custom)
        try:
            assert "custom-test" in available_backends()
            assert isinstance(resolve_backend("custom-test"), Custom)
        finally:
            from repro.mpi import backend as backend_mod

            del backend_mod._BACKENDS["custom-test"]

    def test_unknown_backend_error_lists_available(self):
        with pytest.raises(MPIError, match="procs, sockets, threads"):
            resolve_backend("gpu")

    def test_unknown_backend_rejected(self):
        with pytest.raises(MPIError, match="unknown backend"):
            Runtime(nranks=2, backend="gpu")

    def test_runtime_exposes_backend(self):
        assert Runtime(nranks=1).backend.name == "threads"
        assert Runtime(nranks=1, backend="procs").backend.name == "procs"

    def test_spmd_backend_kwarg(self):
        assert spmd(2, lambda comm: comm.rank, backend="procs") == [0, 1]


class TestProcsBasics:
    def test_results_in_rank_order(self):
        res = Runtime(nranks=4, backend="procs").run(
            lambda comm: comm.rank * 10
        )
        assert res == [0, 10, 20, 30]

    def test_args_kwargs_forwarded(self):
        def main(comm, a, b=0):
            return a + b + comm.rank

        res = Runtime(nranks=2, backend="procs").run(
            main, args=(5,), kwargs={"b": 7}
        )
        assert res == [12, 13]

    def test_single_rank(self):
        assert Runtime(nranks=1, backend="procs").run(
            lambda comm: comm.rank
        ) == [0]

    def test_numpy_payloads(self):
        def main(comm):
            other = 1 - comm.rank
            comm.send(np.full(100, comm.rank, dtype=float), dest=other)
            return float(comm.recv(source=other).sum())

        assert Runtime(nranks=2, backend="procs").run(main) == [100.0, 0.0]

    def test_collectives(self):
        def main(comm):
            total = comm.allreduce(comm.rank)
            gathered = comm.allgather(comm.rank)
            return total, gathered

        res = Runtime(nranks=4, backend="procs").run(main)
        assert res == [(6, [0, 1, 2, 3])] * 4

    def test_split_and_dup(self):
        def main(comm):
            dup = comm.dup()
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return dup.allreduce(1), sub.allreduce(comm.rank), sub.size

        res = Runtime(nranks=4, backend="procs").run(main)
        assert res == [(4, 2, 2), (4, 4, 2), (4, 2, 2), (4, 4, 2)]

    def test_large_message_spills(self):
        """Payloads bigger than the ring go through spill segments."""
        backend = ProcsBackend(ring_capacity=1 << 14)  # 16 KiB ring

        def main(comm):
            if comm.rank == 0:
                comm.send(np.arange(100_000, dtype=float), dest=1)
                return None
            return float(comm.recv(source=0).sum())

        res = Runtime(nranks=2, backend=backend).run(main)
        assert res[1] == float(np.arange(100_000).sum())

    def test_many_messages_wrap_the_ring(self):
        """Sustained traffic must wrap the ring buffer correctly."""
        backend = ProcsBackend(ring_capacity=1 << 13)  # 8 KiB ring

        def main(comm):
            if comm.rank == 0:
                for i in range(200):
                    comm.send(np.full(64, i, dtype=float), dest=1, tag=i % 7)
                return None
            total = 0.0
            for i in range(200):
                total += float(comm.recv(source=0, tag=i % 7)[0])
            return total

        res = Runtime(nranks=2, backend=backend).run(main)
        assert res[1] == float(sum(range(200)))


class TestParity:
    """Virtual-time/profile metrics must be identical across backends."""

    @staticmethod
    def _job(comm):
        comm.compute(seconds=0.001 * (comm.rank + 1))
        comm.barrier()
        part = comm.allreduce(np.ones(50) * comm.rank)
        sub = comm.split(color=comm.rank % 2, key=comm.rank)
        sub.allreduce(1)
        comm.send(comm.rank, dest=(comm.rank + 1) % comm.size, tag=3)
        comm.recv(source=(comm.rank - 1) % comm.size, tag=3)
        return float(part.sum())

    def _run(self, backend):
        rt = Runtime(nranks=4, backend=backend, trace_messages=True)
        res = rt.run(self._job)
        return rt, res

    @pytest.mark.parametrize("backend", [b for b in BACKENDS
                                         if b != "threads"])
    def test_clock_profile_and_trace_identical(self, backend):
        rt_t, res_t = self._run("threads")
        rt_p, res_p = self._run(backend)
        assert res_t == res_p
        for a, b in zip(rt_t.clock_stats(), rt_p.clock_stats()):
            assert (a.total, a.compute, a.comm, a.hidden_comm) == (
                b.total, b.compute, b.comm, b.hidden_comm
            )
        assert rt_t.job_profile().mpi_time == rt_p.job_profile().mpi_time
        assert rt_t.trace.events() == rt_p.trace.events()

    def test_cmtbone_proxy_identical(self):
        from repro.core import CMTBoneConfig, launch_cmtbone

        cfg = CMTBoneConfig(
            n=6, local_shape=(2, 2, 2), nsteps=3, work_mode="proxy",
            gs_method="pairwise", monitor_every=1,
        )
        per_backend = {}
        for backend in BACKENDS:
            results, _rt = launch_cmtbone(cfg, nranks=4, backend=backend)
            per_backend[backend] = [
                (r.vtime_total, r.vtime_comm, tuple(r.monitor_values))
                for r in results
            ]
        for backend in BACKENDS[1:]:
            assert per_backend["threads"] == per_backend[backend]

    def test_context_ids_deterministic(self):
        """Derived comm ids are pure hashes: equal across backends even
        when disjoint subcommunicators derive different comm counts."""

        def main(comm):
            half = comm.split(color=comm.rank // 2, key=comm.rank)
            if comm.rank < 2:
                half = half.dup()  # first group derives one extra comm
            again = comm.split(color=comm.rank % 2, key=comm.rank)
            return half.cid, again.allreduce(comm.rank)

        per_backend = {
            b: Runtime(nranks=4, backend=b).run(main) for b in BACKENDS
        }
        for backend in BACKENDS[1:]:
            assert per_backend["threads"] == per_backend[backend]


class TestProcsFailures:
    def test_exception_reraised_with_rank(self):
        def main(comm):
            if comm.rank == 2:
                raise RuntimeError("boom on 2")
            comm.barrier()

        with pytest.raises(MPIError, match="boom on 2"):
            Runtime(nranks=4, backend="procs").run(main)

    def test_blocked_peers_released_on_error(self):
        def main(comm):
            if comm.rank == 0:
                raise ValueError("dead")
            comm.recv(source=0)

        with pytest.raises(MPIError):
            Runtime(nranks=3, backend="procs").run(main)

    def test_deadlock_detected(self):
        def main(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=1)

        rt = Runtime(nranks=2, backend="procs")
        with pytest.raises(DeadlockError):
            rt.run(main)
        assert rt.deadlock_report is not None
        assert "rank" in rt.deadlock_report

    def test_single_rank_deadlock_detected(self):
        with pytest.raises(DeadlockError):
            Runtime(nranks=1, backend="procs").run(
                lambda comm: comm.recv(source=0)
            )

    def test_hard_death_reported(self):
        """A rank that dies without an exit record must not hang the job."""
        import os

        def main(comm):
            if comm.rank == 1:
                os._exit(17)
            comm.barrier()

        with pytest.raises(MPIError, match="terminated unexpectedly"):
            Runtime(nranks=2, backend="procs").run(main)

    def test_unpicklable_result_reported(self):
        def main(comm):
            return lambda: None  # lambdas don't pickle

        with pytest.raises(MPIError, match="picklable"):
            Runtime(nranks=2, backend="procs").run(main)


class TestProcsAbortFence:
    """White-box: the abort determinism fence (`_FencedAbort`).

    A crashing rank's ``set()`` must not become visible to survivors
    until every envelope the rank pushed has been drained into its
    peers' mailboxes — otherwise "which of the dead rank's last
    messages arrived" is a scheduling accident and recovery reports
    diverge from the threads backend.
    """

    @staticmethod
    def _wiring(n=2):
        import multiprocessing as mp

        from repro.mpi.shm import ShmRing

        ctx = mp.get_context("fork")
        rings = [ShmRing(ctx) for _ in range(n)]
        finished = ctx.Array("b", n, lock=False)
        acks = ctx.Array("q", n * n)
        return rings, finished, acks, ctx.Event()

    def test_set_waits_until_sent_envelopes_are_delivered(self):
        import pickle
        import threading
        import time

        from repro.mpi.backend import _FencedAbort, _delivery_loop

        rings, finished, acks, event = self._wiring()
        delivered = []

        class SlowBox:
            @staticmethod
            def deliver(env):
                time.sleep(0.2)  # hold the race window wide open
                delivered.append(env)

        class Tracker:
            @staticmethod
            def bump():
                pass

        def ack(src):
            with acks.get_lock():
                acks[src * 2 + 1] += 1

        stop = threading.Event()
        drain = threading.Thread(
            target=_delivery_loop,
            args=(rings[1], SlowBox(), Tracker(), stop, ack),
            daemon=True,
        )
        drain.start()
        try:
            rings[1].push(pickle.dumps("last words"))
            _FencedAbort(event, 0, rings, finished, acks).set()
            assert event.is_set()
            # set() returning means delivery already happened — no
            # sleep/retry needed here, which is exactly the property.
            assert delivered == ["last words"]
        finally:
            stop.set()
            drain.join()
            for ring in rings:
                ring.destroy()

    def test_finished_peer_does_not_stall_the_fence(self):
        import time

        from repro.mpi.backend import _FencedAbort

        rings, finished, acks, event = self._wiring()
        finished[1] = 1  # peer already done; its delivery thread is gone
        try:
            start = time.monotonic()
            _FencedAbort(event, 0, rings, finished, acks).set()
            assert event.is_set()
            assert time.monotonic() - start < 2.0
        finally:
            for ring in rings:
                ring.destroy()


class TestProcsRecovery:
    """Satellite: abort, crash recovery, checkpoint/restart on procs."""

    def test_injected_crash_marshalled(self):
        plan = FaultPlan.parse("crash:rank=1,step=2")
        rt = Runtime(nranks=3, backend="procs", fault_plan=plan)

        def main(comm):
            for step in range(5):
                comm.faults.check_step_crash(comm, step)
                comm.barrier()
            return "done"

        with pytest.raises(RankCrashError) as exc:
            rt.run(main)
        assert exc.value.rank == 1
        assert exc.value.step == 2
        # The parent-side injector sees the child's fired crash, which
        # is what the recovery loop uses to disarm it on restart.
        assert [c.rank for c in rt.faults.fired_crashes] == [1]
        assert len(rt.faults.summary()["crashes"]) == 1

    def test_clock_stats_available_after_crash(self):
        """The recovery loop charges lost work from post-crash clocks."""
        plan = FaultPlan.parse("crash:rank=0,step=1")
        rt = Runtime(nranks=2, backend="procs", fault_plan=plan)

        def main(comm):
            for step in range(3):
                comm.compute(seconds=0.01)
                comm.faults.check_step_crash(comm, step)
                comm.barrier()

        with pytest.raises(RankCrashError):
            rt.run(main)
        stats = rt.clock_stats()
        assert max(s.total for s in stats) > 0.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_with_recovery_checkpoint_restart(self, tmp_path, backend):
        """Full campaign: crash, restore from checkpoint, finish —
        bitwise identical to a fault-free run, on either backend."""
        from repro.cli import _sod_setup
        from repro.solver import run_with_recovery

        setup = _sod_setup(2, n=5, nelx=8, gs_method="pairwise")
        common = dict(nranks=2, nsteps=8, dt=2e-4)
        plan = FaultPlan.parse("crash:rank=1,step=5")
        faulty, report = run_with_recovery(
            setup,
            checkpoint_every=3,
            checkpoint_dir=tmp_path / backend,
            fault_plan=plan,
            backend=backend,
            **common,
        )
        assert report.restarts == 1
        assert report.crashes
        clean, _ = run_with_recovery(setup, backend=backend, **common)
        for a, b in zip(clean, faulty):
            np.testing.assert_array_equal(a.u, b.u)

    def test_recovery_report_identical_across_backends(self, tmp_path):
        """The whole virtual-time campaign accounting must agree."""
        from repro.cli import _sod_setup
        from repro.solver import run_with_recovery

        setup = _sod_setup(2, n=5, nelx=8, gs_method="pairwise")
        reports = {}
        for backend in BACKENDS:
            _, reports[backend] = run_with_recovery(
                setup,
                nranks=2,
                nsteps=6,
                dt=2e-4,
                checkpoint_every=2,
                checkpoint_dir=tmp_path / backend,
                fault_plan=FaultPlan.parse("crash:rank=0,step=3"),
                backend=backend,
            )
        a = reports["threads"]
        for backend in BACKENDS[1:]:
            b = reports[backend]
            assert a.total_virtual_seconds == b.total_virtual_seconds
            assert a.lost_work_seconds == b.lost_work_seconds
            assert a.steps_lost == b.steps_lost
            assert a.restarts == b.restarts


def _kill_wrapped_setup(setup, flag_path, kill_call):
    """Wrap a ``setup(comm)`` factory so rank 1 SIGKILLs itself on its
    ``kill_call``-th solver step — once (the flag file survives the
    restart, so the replay attempt runs clean)."""

    def wrapped(comm):
        solver, state = setup(comm)
        if comm.rank == 1 and not os.path.exists(flag_path):
            orig = solver.step
            calls = {"n": 0}

            def step(state, dt):
                calls["n"] += 1
                if calls["n"] == kill_call:
                    with open(flag_path, "w"):
                        pass
                    os.kill(os.getpid(), signal.SIGKILL)
                return orig(state, dt)

            solver.step = step
        return solver, state

    return wrapped


_RENDEZVOUS_CANARY_HITS = []


def _trip_rendezvous_canary():
    _RENDEZVOUS_CANARY_HITS.append(1)


class _EvilHello:
    """Unpickling this records the fact — it must never happen."""

    def __reduce__(self):
        return (_trip_rendezvous_canary, ())


class _AlwaysAliveProc:
    """Stand-in for a process handle liveness polling cannot see
    through — the local ssh client of a wedged remote agent."""

    exitcode = None

    def is_alive(self):
        return True

    def join(self, timeout=None):
        pass

    def terminate(self):
        pass


class TestSockets:
    """Sockets-specific machinery: mesh, families, hosts, hard deaths."""

    def test_stray_connections_cannot_kill_job(self, monkeypatch):
        """Garbage thrown at the rendezvous port — a pickled payload
        without AUTH, a wrong token — is dropped per-connection: it is
        never unpickled and the job completes normally."""
        import pickle
        import threading
        import time

        import repro.net.backend as nb
        from repro.net.wire import AUTH, HELLO, TransportError
        from repro.net.wire import connect as wire_connect

        captured = {}
        real_make_listener = nb.make_listener

        def spy(*args, **kwargs):
            sock, addr = real_make_listener(*args, **kwargs)
            captured.setdefault("addr", addr)  # first = rendezvous
            return sock, addr

        monkeypatch.setattr(nb, "make_listener", spy)

        def probe(frames):
            """Send frames, then read until the driver drops us."""
            fs = wire_connect(captured["addr"])
            try:
                for kind, body in frames:
                    fs.send_frame(kind, body)
                return fs.recv_frame(timeout=15.0)
            except TransportError:
                return None
            finally:
                fs.close()

        outcomes = {}

        def attack():
            deadline = time.monotonic() + 15.0
            while "addr" not in captured:
                if time.monotonic() > deadline:
                    return
                time.sleep(0.002)
            evil = pickle.dumps(_EvilHello())
            outcomes["hello_before_auth"] = probe([(HELLO, evil)])
            outcomes["wrong_token"] = probe(
                [(AUTH, b"wrong"), (HELLO, evil)]
            )

        attacker = threading.Thread(target=attack, daemon=True)
        attacker.start()

        def main(comm):
            time.sleep(0.5)  # keep the monitor up while strays poke it
            return comm.allreduce(comm.rank)

        res = Runtime(nranks=2, backend="sockets").run(main)
        attacker.join(timeout=30.0)
        assert res == [1, 1]
        assert not attacker.is_alive()
        # Both strays were dropped (driver closed the connection)...
        assert outcomes == {"hello_before_auth": None,
                            "wrong_token": None}
        # ...and their pickled bodies were never loaded.
        assert _RENDEZVOUS_CANARY_HITS == []

    def test_never_heartbeating_rank_trips_hb_timeout(self):
        """A rank that wedges after rendezvous but before its *first*
        HEARTBEAT must still be declared dead by hb_timeout — process
        liveness polling cannot see through an ssh client."""
        import pickle
        import threading
        import time

        from repro.net.wire import AUTH, HELLO, make_listener
        from repro.net.wire import connect as wire_connect

        token = "tok"
        backend = SocketBackend(hb_timeout=0.5)
        runtime = Runtime(nranks=1, backend=backend)
        listener, addr = make_listener("tcp")

        def wedged_agent():
            fs = wire_connect(addr)
            fs.send_frame(AUTH, token.encode("ascii"))
            fs.send_frame(HELLO, pickle.dumps({
                "rank": 0, "listen": ("tcp", "127.0.0.1", 1),
                "host": "ghost", "pid": 0, "external": False,
            }))
            fs.recv_frame(timeout=15.0)  # WELCOME
            time.sleep(3.0)  # wedge: no heartbeat, no exit record
            fs.close()

        agent = threading.Thread(target=wedged_agent, daemon=True)
        agent.start()
        out = {}
        monitor = threading.Thread(
            target=lambda: out.setdefault("res", backend._monitor(
                runtime, listener, token, [_AlwaysAliveProc()],
                [("ssh", "ghost")], None,
            )),
            daemon=True,
        )
        monitor.start()
        monitor.join(timeout=10.0)
        assert not monitor.is_alive(), \
            "hb_timeout backstop never fired for a silent rank"
        records, fired = out["res"]
        assert records[0].get("hard_exit") is True
        assert not fired
        listener.close()

    def test_results_and_numpy_payloads(self):
        def main(comm):
            other = (comm.rank + 1) % comm.size
            comm.send(np.full(100, comm.rank, dtype=float), dest=other)
            got = comm.recv(source=(comm.rank - 1) % comm.size)
            return float(got.sum())

        res = Runtime(nranks=4, backend="sockets").run(main)
        assert res == [300.0, 0.0, 100.0, 200.0]

    def test_unix_family(self):
        backend = SocketBackend(family="unix")
        res = Runtime(nranks=3, backend=backend).run(
            lambda comm: comm.allreduce(comm.rank)
        )
        assert res == [3, 3, 3]

    def test_single_rank(self):
        assert Runtime(nranks=1, backend="sockets").run(
            lambda comm: comm.rank
        ) == [0]

    def test_loopback_hosts_set_host_id(self):
        """Loopback host labels flow into the autotune fingerprint."""

        def main(comm):
            from repro.autotune import host_fingerprint

            return host_fingerprint().split("/")[0]

        backend = SocketBackend(
            hosts=["nodeA", "nodeA", "nodeB"], loopback=True
        )
        res = Runtime(nranks=3, backend=backend).run(main)
        assert res == ["nodeA", "nodeA", "nodeB"]

    def test_exception_aborts_blocked_peers(self):
        def main(comm):
            if comm.rank == 0:
                raise ValueError("dead on arrival")
            comm.recv(source=0)

        with pytest.raises(MPIError, match="dead on arrival"):
            Runtime(nranks=3, backend="sockets").run(main)

    def test_deadlock_detected(self):
        def main(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=1)

        rt = Runtime(nranks=2, backend="sockets")
        with pytest.raises(DeadlockError):
            rt.run(main)
        assert rt.deadlock_report is not None
        assert "rank" in rt.deadlock_report

    def test_single_rank_deadlock_detected(self):
        with pytest.raises(DeadlockError):
            Runtime(nranks=1, backend="sockets").run(
                lambda comm: comm.recv(source=0)
            )

    def test_hard_kill_raises_rank_crash(self):
        """A SIGKILLed remote rank surfaces as RankCrashError with the
        dead rank identified — the recovery loop's contract."""

        def main(comm):
            if comm.rank == 1:
                os.kill(os.getpid(), signal.SIGKILL)
            comm.recv(source=1 if comm.rank == 0 else 0, tag=0)

        with pytest.raises(RankCrashError,
                           match="terminated unexpectedly") as exc:
            Runtime(nranks=2, backend="sockets").run(main)
        assert exc.value.rank == 1

    def test_unpicklable_result_reported(self):
        def main(comm):
            return lambda: None  # lambdas don't pickle

        with pytest.raises(MPIError, match="picklable"):
            Runtime(nranks=2, backend="sockets").run(main)

    def test_injected_crash_marshalled(self):
        plan = FaultPlan.parse("crash:rank=1,step=2")
        rt = Runtime(nranks=3, backend="sockets", fault_plan=plan)

        def main(comm):
            for step in range(5):
                comm.faults.check_step_crash(comm, step)
                comm.barrier()
            return "done"

        with pytest.raises(RankCrashError) as exc:
            rt.run(main)
        assert exc.value.rank == 1
        assert exc.value.step == 2
        assert [c.rank for c in rt.faults.fired_crashes] == [1]

    def test_rank_kill_recovered_from_checkpoint(self, tmp_path):
        """A real mid-run SIGKILL of a remote rank: run_with_recovery
        restores the last checkpoint and the final fields are bitwise
        identical to a clean run."""
        from repro.cli import _sod_setup
        from repro.solver import run_with_recovery

        setup = _sod_setup(2, n=5, nelx=8, gs_method="pairwise")
        common = dict(nranks=2, nsteps=8, dt=2e-4, backend="sockets")
        killed = _kill_wrapped_setup(
            setup, str(tmp_path / "killed.flag"), kill_call=5
        )
        faulty, report = run_with_recovery(
            killed,
            checkpoint_every=3,
            checkpoint_dir=tmp_path / "ckpt",
            **common,
        )
        assert report.restarts == 1
        assert any("terminated unexpectedly" in c for c in report.crashes)
        clean, _ = run_with_recovery(setup, **common)
        for a, b in zip(clean, faulty):
            np.testing.assert_array_equal(a.u, b.u)
