"""Global numbering schemes: the index sets behind gs_setup."""

from collections import Counter, defaultdict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh import (
    BoxMesh,
    Partition,
    continuous_numbering,
    dg_face_numbering,
    face_counts,
    multiplicity,
    total_faces,
)


def gather_all(part, numbering):
    """Numbering arrays from every rank."""
    return [numbering(part, r) for r in range(part.nranks)]


def physical_key(mesh, ec, i, j, k, digits=9):
    """Geometric position of a GLL node, wrapped for periodicity."""
    nodes = mesh.element_nodes(ec)
    p = []
    for axis in range(3):
        v = nodes[axis, i, j, k]
        if mesh.periodic[axis]:
            v = v % mesh.lengths[axis]
            if abs(v - mesh.lengths[axis]) < 1e-12:
                v = 0.0
        p.append(round(float(v), digits))
    return tuple(p)


class TestContinuousNumbering:
    @pytest.mark.parametrize(
        "shape,proc,periodic",
        [
            ((2, 2, 2), (2, 1, 1), (True, True, True)),
            ((4, 2, 2), (2, 2, 1), (False, False, False)),
            ((3, 2, 2), (1, 2, 1), (True, False, True)),
        ],
    )
    def test_geometric_consistency(self, shape, proc, periodic):
        """Same gid <=> same physical location, across all ranks."""
        mesh = BoxMesh(shape=shape, n=3, periodic=periodic)
        part = Partition(mesh, proc_shape=proc)
        gid_to_pos = {}
        pos_to_gid = {}
        for rank in range(part.nranks):
            gids = continuous_numbering(part, rank)
            for lidx, ec in enumerate(part.local_elements(rank)):
                for i in range(3):
                    for j in range(3):
                        for k in range(3):
                            g = int(gids[lidx, i, j, k])
                            pos = physical_key(mesh, ec, i, j, k)
                            assert gid_to_pos.setdefault(g, pos) == pos
                            assert pos_to_gid.setdefault(pos, g) == g
        assert len(gid_to_pos) == mesh.unique_point_count()

    def test_shape(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=4)
        part = Partition(mesh, proc_shape=(2, 1, 1))
        assert continuous_numbering(part, 0).shape == (4, 4, 4, 4)

    def test_ids_dense(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(1, 1, 1))
        gids = continuous_numbering(part, 0)
        assert gids.min() == 0
        assert gids.max() == mesh.unique_point_count() - 1

    def test_corner_multiplicity_periodic(self):
        """Element corners are shared by 8 elements on a periodic box."""
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(1, 1, 1))
        gids = continuous_numbering(part, 0)
        m = multiplicity(gids)
        assert set(np.unique(m)) == {1, 2, 4, 8}

    @given(
        st.tuples(
            st.integers(1, 3), st.integers(1, 3), st.integers(1, 3)
        ),
        st.integers(2, 4),
        st.tuples(st.booleans(), st.booleans(), st.booleans()),
    )
    @settings(max_examples=20, deadline=None)
    def test_unique_count_formula(self, shape, n, periodic):
        """Property: distinct ids match the analytic unique-point count."""
        mesh = BoxMesh(shape=shape, n=n, periodic=periodic)
        part = Partition(mesh, proc_shape=(1, 1, 1))
        gids = continuous_numbering(part, 0)
        assert len(np.unique(gids)) == mesh.unique_point_count()


class TestDGFaceNumbering:
    @pytest.mark.parametrize(
        "shape,proc",
        [((3, 2, 2), (3, 1, 1)), ((2, 2, 2), (2, 2, 2)), ((4, 2, 2), (2, 1, 1))],
    )
    def test_every_face_point_shared_exactly_twice_periodic(self, shape, proc):
        mesh = BoxMesh(shape=shape, n=3)
        part = Partition(mesh, proc_shape=proc)
        cnt = Counter()
        for rank in range(part.nranks):
            cnt.update(dg_face_numbering(part, rank).ravel().tolist())
        assert set(cnt.values()) == {2}
        assert len(cnt) == total_faces(mesh) * 9

    def test_nonperiodic_boundary_faces_unshared(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3, periodic=(False,) * 3)
        part = Partition(mesh, proc_shape=(1, 1, 1))
        cnt = Counter(dg_face_numbering(part, 0).ravel().tolist())
        values = Counter(cnt.values())
        # Interior faces: 3 axes x 1 plane x 4 el = 12 faces shared 2x;
        # boundary: 6 sides x 4 faces = 24 faces seen once.
        assert values[2] == 12 * 9
        assert values[1] == 24 * 9

    def test_shared_block_geometric_agreement(self):
        """The two elements at a face assign ids to coincident points."""
        mesh = BoxMesh(shape=(2, 1, 1), n=4)
        part = Partition(mesh, proc_shape=(2, 1, 1))
        g0 = dg_face_numbering(part, 0)[0]  # element (0,0,0)
        g1 = dg_face_numbering(part, 1)[0]  # element (1,0,0)
        # Face 1 (+x) of element 0 == face 0 (-x) of element 1.
        np.testing.assert_array_equal(g0[1], g1[0])
        # And with periodic wrap, face 0 of el 0 == face 1 of el 1.
        np.testing.assert_array_equal(g0[0], g1[1])

    def test_face_blocks_are_contiguous_n2_ranges(self):
        mesh = BoxMesh(shape=(2, 2, 1), n=3)
        part = Partition(mesh, proc_shape=(1, 1, 1))
        gids = dg_face_numbering(part, 0)
        for e in range(4):
            for f in range(6):
                block = gids[e, f]
                base = block.min()
                np.testing.assert_array_equal(
                    np.sort(block.ravel()), np.arange(base, base + 9)
                )
                assert base % 9 == 0

    def test_face_counts(self):
        mesh_p = BoxMesh(shape=(3, 4, 5), n=3)
        assert face_counts(mesh_p) == (3, 4, 5)
        mesh_np = BoxMesh(shape=(3, 4, 5), n=3, periodic=(False,) * 3)
        assert face_counts(mesh_np) == (4, 5, 6)

    def test_total_faces(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        # periodic: 3 axes x 2 planes x 4 = 24 faces
        assert total_faces(mesh) == 24

    @given(
        st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3)),
        st.integers(2, 4),
    )
    @settings(max_examples=20, deadline=None)
    def test_dg_ids_disjoint_per_face(self, shape, n):
        """No two distinct geometric faces share any id."""
        mesh = BoxMesh(shape=shape, n=n)
        part = Partition(mesh, proc_shape=(1, 1, 1))
        gids = dg_face_numbering(part, 0)
        face_of = defaultdict(set)
        for e in range(gids.shape[0]):
            for f in range(6):
                fid = int(gids[e, f].min()) // (n * n)
                for g in gids[e, f].ravel():
                    face_of[int(g)].add(fid)
        assert all(len(s) == 1 for s in face_of.values())


class TestMultiplicity:
    def test_local_multiplicity_counts(self):
        gids = np.array([0, 1, 1, 2, 2, 2])
        np.testing.assert_array_equal(
            multiplicity(gids), [1, 2, 2, 3, 3, 3]
        )
