"""Collective operations against serial references, across rank counts.

Sizes include non-powers-of-two to exercise the fold/unfold paths of
the recursive-doubling allreduce and the binomial trees.
"""

import functools

import numpy as np
import pytest

from repro.mpi import MAX, MIN, PROD, SUM, Runtime

SIZES = [1, 2, 3, 4, 5, 7, 8, 12, 16]


def run(nranks, fn, *args):
    return Runtime(nranks=nranks).run(fn, args=args)


@pytest.mark.parametrize("p", SIZES)
class TestAllreduce:
    def test_sum_scalar(self, p):
        res = run(p, lambda comm: comm.allreduce(comm.rank + 1))
        assert res == [p * (p + 1) // 2] * p

    def test_sum_array(self, p):
        def main(comm):
            return comm.allreduce(np.array([comm.rank, 1.0, -comm.rank]))

        res = run(p, main)
        expected = np.array([p * (p - 1) / 2, p, -p * (p - 1) / 2])
        for r in res:
            np.testing.assert_allclose(r, expected)

    def test_min_max(self, p):
        def main(comm):
            return (
                comm.allreduce(comm.rank, op=MIN),
                comm.allreduce(comm.rank, op=MAX),
            )

        res = run(p, main)
        assert all(r == (0, p - 1) for r in res)

    def test_prod(self, p):
        def main(comm):
            return comm.allreduce(2.0, op=PROD)

        res = run(p, main)
        assert all(r == pytest.approx(2.0**p) for r in res)


@pytest.mark.parametrize("p", SIZES)
class TestBcastReduce:
    def test_bcast_from_each_root(self, p):
        def main(comm, root):
            data = {"payload": comm.rank} if comm.rank == root else None
            return comm.bcast(data, root=root)

        for root in {0, p // 2, p - 1}:
            res = run(p, main, root)
            assert res == [{"payload": root}] * p

    def test_reduce_sum(self, p):
        def main(comm, root):
            return comm.reduce(np.array([comm.rank]), op=SUM, root=root)

        root = p - 1
        res = run(p, main, root)
        for r, v in enumerate(res):
            if r == root:
                assert v[0] == p * (p - 1) / 2
            else:
                assert v is None


@pytest.mark.parametrize("p", SIZES)
class TestGatherScatterAllgather:
    def test_allgather(self, p):
        res = run(p, lambda comm: comm.allgather(comm.rank * 2))
        assert res == [[2 * i for i in range(p)]] * p

    def test_gather(self, p):
        def main(comm):
            return comm.gather(str(comm.rank), root=0)

        res = run(p, main)
        assert res[0] == [str(i) for i in range(p)]
        assert all(v is None for v in res[1:])

    def test_scatter(self, p):
        def main(comm):
            payloads = (
                [f"item{i}" for i in range(comm.size)]
                if comm.rank == 0
                else None
            )
            return comm.scatter(payloads, root=0)

        res = run(p, main)
        assert res == [f"item{i}" for i in range(p)]

    def test_alltoall(self, p):
        def main(comm):
            send = [(comm.rank, d) for d in range(comm.size)]
            return comm.alltoall(send)

        res = run(p, main)
        for r, got in enumerate(res):
            assert got == [(s, r) for s in range(p)]


@pytest.mark.parametrize("p", SIZES)
def test_barrier_completes(p):
    def main(comm):
        for _ in range(3):
            comm.barrier()
        return True

    assert all(run(p, main))


def test_barrier_synchronizes_virtual_time():
    """After a barrier no rank's clock can lag a peer's pre-barrier time."""

    def main(comm):
        if comm.rank == 0:
            comm.compute(seconds=1.0)
        before = comm.clock.now
        comm.barrier()
        return before, comm.clock.now

    res = Runtime(nranks=4).run(main)
    slowest_before = max(b for b, _ in res)
    assert all(after >= slowest_before for _, after in res)


def test_allreduce_matches_functools_reduce():
    """Cross-check against a serial reduction for irregular values."""
    rng = np.random.default_rng(7)
    p = 6
    values = [rng.standard_normal(5) for _ in range(p)]

    def main(comm):
        return comm.allreduce(values[comm.rank])

    res = Runtime(nranks=p).run(main)
    expected = functools.reduce(lambda a, b: a + b, values)
    for r in res:
        np.testing.assert_allclose(r, expected, rtol=1e-12)


def test_scatter_requires_payload_per_rank():
    from repro.mpi import MPIError

    def main(comm):
        payloads = [1] if comm.rank == 0 else None
        return comm.scatter(payloads, root=0)

    with pytest.raises(MPIError):
        Runtime(nranks=2).run(main)


def test_alltoall_requires_full_list():
    from repro.mpi import MPIError

    def main(comm):
        return comm.alltoall([1])

    with pytest.raises(MPIError):
        Runtime(nranks=3).run(main)


@pytest.mark.parametrize("p", SIZES)
class TestScanExscan:
    def test_scan_sum(self, p):
        res = run(p, lambda comm: comm.scan(comm.rank + 1))
        assert res == [sum(range(1, r + 2)) for r in range(p)]

    def test_scan_arrays(self, p):
        def main(comm):
            return comm.scan(np.array([comm.rank, 1.0]))

        res = run(p, main)
        for r, v in enumerate(res):
            np.testing.assert_allclose(v, [r * (r + 1) / 2, r + 1])

    def test_scan_noncommutative_order(self, p):
        """Prefix over string concatenation: strict rank order."""
        from repro.mpi import ReduceOp

        concat = ReduceOp("CONCAT", lambda a, b: a + b, lambda dt: "")

        def main(comm):
            return comm.scan(chr(ord("a") + comm.rank), op=concat)

        res = run(p, main)
        alphabet = "".join(chr(ord("a") + i) for i in range(p))
        assert res == [alphabet[: r + 1] for r in range(p)]

    def test_exscan(self, p):
        res = run(p, lambda comm: comm.exscan(comm.rank + 1))
        assert res[0] is None
        for r in range(1, p):
            assert res[r] == sum(range(1, r + 1))

    def test_exscan_offsets_usage(self, p):
        """The classic use: globally numbering variable-length blocks."""

        def main(comm):
            mine = comm.rank + 2          # block length
            offset = comm.exscan(mine) or 0
            total = comm.allreduce(mine)
            return offset, mine, total

        res = run(p, main)
        expect_offset = 0
        total = sum(r + 2 for r in range(p))
        for r, (offset, mine, tot) in enumerate(res):
            assert offset == expect_offset
            assert tot == total
            expect_offset += mine
