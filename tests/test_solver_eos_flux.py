"""Equation of state and Euler flux functions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import (
    ENERGY,
    IdealGas,
    MX,
    NEQ,
    RHO,
    euler_flux,
    euler_fluxes,
    from_primitives,
    uniform_state,
    wavespeed,
)


class TestIdealGas:
    def test_pressure_energy_roundtrip(self):
        eos = IdealGas(gamma=1.4)
        rho = np.array([1.0, 2.0])
        vel = np.array([[0.5, -1.0], [0.0, 0.2], [1.0, 0.0]])
        p = np.array([1.0, 5.0])
        e = eos.total_energy(rho, vel, p)
        mom = rho * vel
        np.testing.assert_allclose(eos.pressure(rho, mom, e), p, rtol=1e-13)

    def test_sound_speed(self):
        eos = IdealGas(gamma=1.4)
        a = eos.sound_speed(np.array([1.0]), np.array([1.0]))
        assert a[0] == pytest.approx(np.sqrt(1.4))

    def test_temperature(self):
        eos = IdealGas(gamma=1.4, r_gas=287.0)
        t = eos.temperature(np.array([1.0]), np.array([287.0]))
        assert t[0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            IdealGas(gamma=1.0)
        with pytest.raises(ValueError):
            IdealGas(r_gas=0.0)

    @given(
        st.floats(0.1, 10.0), st.floats(-3.0, 3.0), st.floats(0.1, 10.0)
    )
    @settings(max_examples=30)
    def test_positivity_property(self, rho, u, p):
        eos = IdealGas()
        rho_a = np.array([rho])
        vel = np.array([[u], [0.0], [0.0]])
        e = eos.total_energy(rho_a, vel, np.array([p]))
        back = eos.pressure(rho_a, rho_a * vel, e)
        assert back[0] == pytest.approx(p, rel=1e-10)


def point_state(rho, vel, p):
    """A single-point (nel=1, N=1... shaped) state for flux checks."""
    shape = (1, 1, 1, 1)
    rho_a = np.full(shape, rho)
    vel_a = np.array(vel).reshape(3, 1, 1, 1, 1) * np.ones((3,) + shape)
    p_a = np.full(shape, p)
    return from_primitives(rho_a, vel_a, p_a)


def flat(arr):
    return arr.reshape(arr.shape[0], -1)


class TestEulerFlux:
    def _state(self):
        return point_state(1.0, (2.0, 3.0, -1.0), 5.0)

    def test_mass_flux_is_momentum(self):
        st_ = self._state()
        for axis in range(3):
            f = euler_flux(st_.u, st_.eos, axis)
            np.testing.assert_allclose(f[RHO], st_.u[MX + axis])

    def test_momentum_flux_includes_pressure(self):
        st_ = self._state()
        f = euler_flux(st_.u, st_.eos, 0)
        # f_mx = rho u^2 + p = 1*4 + 5 = 9
        assert flat(f)[MX][0] == pytest.approx(9.0)
        # f_my = rho u v = 6
        assert flat(f)[MX + 1][0] == pytest.approx(6.0)

    def test_energy_flux(self):
        st_ = self._state()
        f = euler_flux(st_.u, st_.eos, 0)
        e = flat(st_.u)[ENERGY][0]
        assert flat(f)[ENERGY][0] == pytest.approx((e + 5.0) * 2.0)

    def test_euler_fluxes_matches_individual(self):
        st_ = self._state()
        fx, fy, fz = euler_fluxes(st_.u, st_.eos)
        for axis, f in enumerate((fx, fy, fz)):
            np.testing.assert_allclose(
                f, euler_flux(st_.u, st_.eos, axis), rtol=1e-14
            )

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            euler_flux(self._state().u, IdealGas(), 3)

    def test_zero_velocity_flux_is_pressure_only(self):
        st_ = point_state(2.0, (0.0, 0.0, 0.0), 3.0)
        f = euler_flux(st_.u, st_.eos, 1)
        np.testing.assert_allclose(f[RHO], 0.0)
        assert flat(f)[MX + 1][0] == pytest.approx(3.0)
        np.testing.assert_allclose(f[ENERGY], 0.0)


class TestWavespeed:
    def test_formula(self):
        st_ = point_state(1.0, (3.0, 0.0, 0.0), 1.0)
        lam = wavespeed(st_.u, st_.eos, 0)
        assert lam.ravel()[0] == pytest.approx(3.0 + np.sqrt(1.4))

    def test_direction_dependence(self):
        st_ = point_state(1.0, (3.0, 0.0, 0.0), 1.0)
        assert wavespeed(st_.u, st_.eos, 0).ravel()[0] > wavespeed(
            st_.u, st_.eos, 1
        ).ravel()[0]


class TestFlowState:
    def test_uniform_state_fields(self):
        st_ = uniform_state(4, 3, rho=1.5, vel=(1.0, 0.0, 0.0), p=2.0)
        assert st_.u.shape == (NEQ, 4, 3, 3, 3)
        np.testing.assert_allclose(st_.density(), 1.5)
        np.testing.assert_allclose(st_.pressure(), 2.0, rtol=1e-13)
        np.testing.assert_allclose(st_.velocity()[0], 1.0)
        assert st_.is_physical()

    def test_max_wavespeed(self):
        st_ = uniform_state(1, 3, rho=1.0, vel=(0.5, 0.0, 0.0), p=1.0)
        assert st_.max_wavespeed() == pytest.approx(0.5 + np.sqrt(1.4))

    def test_unphysical_detected(self):
        st_ = uniform_state(1, 3)
        st_.u[RHO] *= -1
        assert not st_.is_physical()

    def test_copy_is_deep(self):
        a = uniform_state(1, 3)
        b = a.copy()
        b.u[RHO] += 1
        assert a.u[RHO][0, 0, 0, 0] == 1.0

    def test_shape_validation(self):
        from repro.solver.state import FlowState

        with pytest.raises(ValueError):
            FlowState(u=np.zeros((4, 1, 3, 3, 3)), eos=IdealGas())
