"""Smoke tests: every example script must run clean end to end.

The cheap scripts run at full size; the longer ones are executed with
their module-level knobs (STEPS / N_PARTICLES / ...) patched down so
the whole module stays under a few seconds.  Each test executes the
example in a fresh namespace via runpy-style loading, so import-time
breakage is caught too.
"""

import importlib.util
import pathlib
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_module(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


class TestExamplesSmoke:
    def test_examples_inventory(self):
        names = sorted(p.stem for p in EXAMPLES.glob("*.py"))
        assert names == [
            "acoustic_pulse",
            "architecture_dse",
            "kernel_tuning",
            "particle_transport",
            "quickstart",
            "scaling_study",
            "shock_capturing",
            "sod_shock_tube",
            "taylor_green",
        ]

    def test_quickstart(self, capsys):
        mod = load_module("quickstart")
        mod.main()
        out = capsys.readouterr().out
        assert "chosen exchange method" in out
        assert "hot spot: ax_" in out
        assert "execution timeline" in out

    def test_kernel_tuning(self, capsys):
        mod = load_module("kernel_tuning")
        mod.wall_study(n=6, nel=16)
        mod.modelled_study()
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "paper" in out

    def test_acoustic_pulse_short(self, capsys):
        mod = load_module("acoustic_pulse")
        mod.STEPS = 20
        from repro.mpi import Runtime

        Runtime(nranks=mod.PART.nranks).run(mod.main)
        out = capsys.readouterr().out
        assert "conservation check" in out

    def test_particle_transport_short(self, capsys):
        mod = load_module("particle_transport")
        mod.STEPS = 15
        mod.N_PARTICLES = 50
        from repro.mpi import Runtime

        rt = Runtime(nranks=mod.PART.nranks)
        counts = rt.run(mod.main)
        assert sum(counts) == 50

    def test_shock_capturing_short(self, capsys):
        mod = load_module("shock_capturing")
        mod.STEPS = 60
        from repro.mpi import Runtime

        Runtime(nranks=mod.PART.nranks).run(mod.main)
        out = capsys.readouterr().out
        assert "steepening wave" in out

    def test_architecture_dse_named_only(self, capsys):
        mod = load_module("architecture_dse")
        from repro.codesign import Explorer

        explorer = Explorer(
            config=mod.WORKLOAD.with_(nsteps=2), nranks=mod.NRANKS
        )
        mod.named_candidates_study(explorer)
        out = capsys.readouterr().out
        assert "notional exascale candidates" in out

    def test_scaling_study_weak_only(self, capsys):
        mod = load_module("scaling_study")
        # Patch the sweep to its two cheapest points.
        t, m1, m2, imb = mod.run_once(8, __import__(
            "repro.perfmodel", fromlist=["MachineModel"]
        ).MachineModel.preset("compton"), nsteps=2)
        assert t > 0
        assert 0 <= m1 <= 100


    def test_taylor_green_short(self, capsys):
        mod = load_module("taylor_green")
        mod.STEPS = 60
        from repro.mpi import Runtime

        Runtime(nranks=mod.PART.nranks).run(mod.main)
        out = capsys.readouterr().out
        assert "Taylor-Green vortex" in out
