"""Timeline recording and text Gantt rendering."""

import pytest

from repro.analysis.timeline import (
    Interval,
    TimelineRecorder,
    merge_timelines,
    render_gantt,
    utilization,
)
from repro.mpi import Runtime
from repro.mpi.clock import VirtualClock


class TestRecorder:
    def test_records_top_level_only(self):
        clock = VirtualClock()
        rec = TimelineRecorder(0, clock)
        with rec.region("outer"):
            clock.advance(1.0)
            with rec.region("inner"):
                clock.advance(2.0)
        assert len(rec.intervals) == 1
        iv = rec.intervals[0]
        assert iv.name == "outer"
        assert iv.duration == pytest.approx(3.0)

    def test_zero_length_dropped(self):
        clock = VirtualClock()
        rec = TimelineRecorder(0, clock)
        with rec.region("noop"):
            pass
        assert rec.intervals == []

    def test_sequential_intervals(self):
        clock = VirtualClock()
        rec = TimelineRecorder(1, clock)
        for name in ("a", "b", "a"):
            with rec.region(name):
                clock.advance(0.5)
        assert [iv.name for iv in rec.intervals] == ["a", "b", "a"]
        assert rec.intervals[2].t0 == pytest.approx(1.0)


class TestMergeAndRender:
    def _sample(self):
        return [
            Interval(0, "compute", 0.0, 3.0),
            Interval(0, "exchange", 3.0, 4.0),
            Interval(1, "compute", 0.0, 2.0),
            Interval(1, "exchange", 2.0, 2.5),
            # rank 1 idle 2.5..4.0 (waiting)
        ]

    def test_merge_ordering(self):
        clocks = [VirtualClock(), VirtualClock()]
        recs = [TimelineRecorder(r, clocks[r]) for r in range(2)]
        with recs[1].region("x"):
            clocks[1].advance(1.0)
        with recs[0].region("y"):
            clocks[0].advance(0.5)
        merged = merge_timelines(recs)
        assert [iv.rank for iv in merged] == [0, 1]

    def test_gantt_structure(self):
        text = render_gantt(self._sample(), width=40)
        lines = text.splitlines()
        assert lines[1].startswith("rank    0 |")
        assert lines[2].startswith("rank    1 |")
        assert "a=compute" in lines[-1]
        assert "b=exchange" in lines[-1]
        # rank 1's tail is idle dots.
        assert lines[2].rstrip("|").endswith(".")

    def test_gantt_dominant_symbol_per_bin(self):
        text = render_gantt(self._sample(), width=4)
        row0 = text.splitlines()[1]
        cells = row0.split("|")[1]
        assert cells == "aaab"

    def test_empty(self):
        assert "empty" in render_gantt([])

    def test_utilization(self):
        clock = VirtualClock()
        rec = TimelineRecorder(0, clock)
        with rec.region("w"):
            clock.advance(2.0)
        clock.advance(2.0)  # untracked
        assert utilization([rec], total_time=4.0) == [pytest.approx(0.5)]


class TestEndToEnd:
    def test_wait_shows_as_idle(self):
        """A rank blocked on a late sender shows an idle gap."""

        def main(comm):
            rec = TimelineRecorder(comm.rank, comm.clock)
            if comm.rank == 0:
                with rec.region("compute"):
                    comm.compute(seconds=1.0)
                comm.send(1, dest=1)
            else:
                with rec.region("recv"):
                    comm.recv(source=0)
            return rec.intervals

        res = Runtime(nranks=2).run(main)
        recv_iv = res[1][0]
        # The receive on rank 1 spans the sender's whole compute time.
        assert recv_iv.duration > 0.9
