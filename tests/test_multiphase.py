"""Two-way coupled particles: drag, deposition, conservation."""

import numpy as np
import pytest

from repro.kernels.gll import gll_weights
from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import (
    CMTSolver,
    MX,
    SolverConfig,
    uniform_state,
)
from repro.solver.multiphase import (
    InertialCloud,
    TwoWayCoupling,
    deposit_at,
    seed_inertial,
)
from repro.solver.particles import ParticleTracker

MESH = BoxMesh(shape=(4, 2, 2), n=5)
PART = Partition(MESH, proc_shape=(2, 1, 1))


class TestDeposit:
    def test_integral_exact(self):
        """The quadrature integral of a deposit equals the value."""
        n = 5
        mesh = BoxMesh(shape=(2, 1, 1), n=n, lengths=(2.0, 1.0, 1.0))
        w = np.asarray(gll_weights(n))
        w3 = w[:, None, None] * w[None, :, None] * w[None, None, :]
        jx, jy, jz = mesh.jacobian
        jvol = 1.0 / (jx * jy * jz)
        field = np.zeros((2, n, n, n))
        rng = np.random.default_rng(0)
        pts = rng.uniform(-1, 1, (10, 3))
        els = rng.integers(0, 2, 10)
        vals = rng.standard_normal(10)
        deposit_at(field, vals, pts, els, w3, jvol)
        integral = float(np.einsum("eijk,ijk->", field, w3) * jvol)
        assert integral == pytest.approx(vals.sum(), rel=1e-12)

    def test_point_at_node_hits_that_node(self):
        n = 4
        w = np.asarray(gll_weights(n))
        w3 = w[:, None, None] * w[None, :, None] * w[None, None, :]
        field = np.zeros((1, n, n, n))
        from repro.kernels.gll import gll_points

        x = np.asarray(gll_points(n))
        pts = np.array([[x[1], x[2], x[0]]])
        deposit_at(field, np.array([2.0]), pts, np.array([0]), w3, 1.0)
        mask = np.zeros_like(field, dtype=bool)
        mask[0, 1, 2, 0] = True
        assert field[mask][0] != 0.0
        np.testing.assert_allclose(field[~mask], 0.0, atol=1e-12)


class TestInertialCloud:
    def test_validation(self):
        with pytest.raises(ValueError):
            InertialCloud(np.array([1]), np.zeros((1, 3)), np.zeros((2, 3)))

    def test_seed(self):
        def main(comm):
            tr = ParticleTracker(comm, PART)
            cloud = seed_inertial(tr, 50, vel=(0.1, 0.0, 0.0), seed=2)
            return len(cloud), cloud.vel[:, 0].tolist() if len(cloud) else []

        res = Runtime(nranks=2).run(main)
        assert sum(n for n, _ in res) == 50
        for _n, vels in res:
            assert all(v == 0.1 for v in vels)


class TestDragRelaxation:
    def test_particle_relaxes_to_gas_velocity(self):
        """Exact exponential relaxation in a uniform gas stream."""
        tau = 0.05

        def main(comm):
            tr = ParticleTracker(comm, PART)
            coupling = TwoWayCoupling(comm, tr, tau_p=tau,
                                      particle_mass=1e-6)
            st = uniform_state(PART.nel_local, MESH.n,
                               vel=(0.2, 0.0, 0.0))
            if comm.rank == 0:
                cloud = InertialCloud(
                    ids=[0], pos=np.array([[0.3, 0.3, 0.3]]),
                    vel=np.array([[0.0, 0.0, 0.0]]),
                )
            else:
                cloud = InertialCloud.empty()
            cloud = coupling.migrate(cloud)
            dt = 0.01
            nsteps = 10
            for _ in range(nsteps):
                st, cloud, _ = coupling.step(st, cloud, dt)
            if len(cloud):
                return float(cloud.vel[0, 0]), nsteps * dt
            return None

        res = [r for r in Runtime(nranks=2).run(main) if r is not None]
        assert len(res) == 1
        v, t = res[0]
        # Tiny particle mass: gas barely changes; exact relaxation.
        assert v == pytest.approx(0.2 * (1 - np.exp(-t / tau)), rel=1e-3)

    def test_validation(self):
        def main(comm):
            tr = ParticleTracker(comm, PART)
            TwoWayCoupling(comm, tr, tau_p=0.0, particle_mass=1.0)

        with pytest.raises(Exception, match="positive"):
            Runtime(nranks=2).run(main)


class TestTwoWayConservation:
    def test_total_momentum_conserved(self):
        """Gas + particle momentum is invariant under the coupling."""
        def main(comm):
            tr = ParticleTracker(comm, PART)
            coupling = TwoWayCoupling(comm, tr, tau_p=0.02,
                                      particle_mass=0.01)
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            st = uniform_state(PART.nel_local, MESH.n)
            cloud = seed_inertial(tr, 40, vel=(0.3, -0.1, 0.05), seed=4)
            gas_p0 = np.array(
                [solver.integrate(st.u[MX + c]) for c in range(3)]
            )
            part_p0 = coupling.total_particle_momentum(cloud)
            dt = 5e-3
            for _ in range(8):
                st = solver.step(st, dt)
                st, cloud, _ = coupling.step(st, cloud, dt)
            gas_p1 = np.array(
                [solver.integrate(st.u[MX + c]) for c in range(3)]
            )
            part_p1 = coupling.total_particle_momentum(cloud)
            count = coupling.global_count(cloud)
            return gas_p0 + part_p0, gas_p1 + part_p1, count, (
                st.is_physical()
            )

        total0, total1, count, ok = Runtime(nranks=2).run(main)[0]
        assert ok
        assert count == 40
        np.testing.assert_allclose(total1, total0, atol=1e-12)

    def test_particles_drag_gas_into_motion(self):
        """Heavy moving particles accelerate an initially still gas."""

        def main(comm):
            tr = ParticleTracker(comm, PART)
            coupling = TwoWayCoupling(comm, tr, tau_p=0.05,
                                      particle_mass=0.05)
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            st = uniform_state(PART.nel_local, MESH.n)  # still gas
            cloud = seed_inertial(tr, 30, vel=(0.5, 0.0, 0.0), seed=5)
            dt = 5e-3
            for _ in range(10):
                st = solver.step(st, dt)
                st, cloud, _ = coupling.step(st, cloud, dt)
            gas_px = solver.integrate(st.u[MX])
            part_v = coupling.total_particle_momentum(cloud)[0]
            return gas_px, part_v, st.is_physical()

        gas_px, part_px, ok = Runtime(nranks=2).run(main)[0]
        assert ok
        assert gas_px > 1e-4          # gas picked up momentum
        assert part_px < 30 * 0.05 * 0.5   # particles slowed down

    def test_migration_preserves_velocity_state(self):
        def main(comm):
            tr = ParticleTracker(comm, PART)
            coupling = TwoWayCoupling(comm, tr, tau_p=1.0,
                                      particle_mass=1e-3)
            # Particle on rank 0's side, headed across the boundary
            # at x = 0.5 (4 elements over length 1, split 2 ranks).
            if comm.rank == 0:
                cloud = InertialCloud(
                    ids=[7], pos=np.array([[0.48, 0.25, 0.25]]),
                    vel=np.array([[0.9, 0.1, -0.2]]),
                )
            else:
                cloud = InertialCloud.empty()
            st = uniform_state(PART.nel_local, MESH.n,
                               vel=(0.9, 0.1, -0.2))
            for _ in range(5):
                st, cloud, _ = coupling.step(st, cloud, 0.02)
            if len(cloud):
                return comm.rank, cloud.ids.tolist(), cloud.vel[0].tolist()
            return None

        res = [r for r in Runtime(nranks=2).run(main) if r is not None]
        assert len(res) == 1
        rank, ids, vel = res[0]
        assert ids == [7]
        np.testing.assert_allclose(vel, [0.9, 0.1, -0.2], atol=1e-6)
        assert rank == 1  # it crossed into rank 1's half (x > 0.5)
