"""Workspace reuse and ``out=`` kernels — bitwise-identity guarantees.

The hot-path optimization (reusable buffers through the derivative
kernels, flux assembly, and RK steppers) is only admissible because it
changes *allocation*, never *arithmetic*: every ``out=`` variant must
produce bit-for-bit the same floats as its allocating twin, and the
solver with ``reuse_workspace=True`` must reproduce the
``reuse_workspace=False`` trajectory exactly.
"""

import numpy as np
import pytest

from repro.kernels import Workspace, derivative_matrix, grad_workspace
from repro.kernels import derivatives as dk
from repro.solver.rk import step_euler, step_ssprk2, step_ssprk3

VARIANTS = ("basic", "fused", "einsum")
DIRECTIONS = ("r", "s", "t")


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(1234)
    n = 7
    return rng.standard_normal((9, n, n, n)), derivative_matrix(n)


# -- Workspace semantics --------------------------------------------------

class TestWorkspace:
    def test_buffer_reused_for_same_key(self):
        w = Workspace()
        a = w.buffer((4, 3), key="a")
        b = w.buffer((4, 3), key="a")
        assert a is b
        assert len(w) == 1

    def test_distinct_keys_never_alias(self):
        w = Workspace()
        a = w.buffer((4, 3), key="a")
        b = w.buffer((4, 3), key="b")
        assert not np.shares_memory(a, b)

    def test_shape_change_allocates_fresh(self):
        w = Workspace()
        a = w.buffer((4, 3), key="a")
        b = w.buffer((5, 3), key="a")
        assert a.shape != b.shape

    def test_zeros_is_zeroed_on_every_call(self):
        w = Workspace()
        z = w.zeros((3,), key="z")
        z[:] = 7.0
        assert np.all(w.zeros((3,), key="z") == 0.0)

    def test_clear_drops_buffers(self):
        w = Workspace()
        w.buffer((4,), key="a")
        assert w.nbytes > 0
        w.clear()
        assert len(w) == 0 and w.nbytes == 0

    def test_like_matches_template(self):
        w = Workspace()
        t = np.empty((2, 3, 3, 3))
        assert w.like(t, "x").shape == t.shape


# -- out= kernels bitwise vs allocating -----------------------------------

class TestDerivativeOut:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_out_bitwise_identical(self, batch, variant, direction):
        u, dmat = batch
        ref = dk.derivative(u, dmat, direction, variant=variant)
        out = np.full_like(u, np.nan)  # stale garbage must be overwritten
        res = dk.derivative(u, dmat, direction, variant=variant, out=out)
        assert res is out
        assert np.array_equal(ref, res)

    def test_grad_workspace_bitwise(self, batch):
        u, dmat = batch
        work = Workspace()
        ref = dk.grad(u, dmat)
        res = dk.grad(u, dmat, out=grad_workspace(work, u))
        for a, b in zip(ref, res):
            assert np.array_equal(a, b)
        # Second call reuses the same buffers and still matches.
        res2 = dk.grad(u, dmat, out=grad_workspace(work, u))
        for a, b in zip(ref, res2):
            assert np.array_equal(a, b)

    def test_out_aliasing_input_rejected(self, batch):
        u, dmat = batch
        with pytest.raises(ValueError, match="alias"):
            dk.dudr(u, dmat, out=u)

    def test_out_bad_shape_rejected(self, batch):
        u, dmat = batch
        with pytest.raises(ValueError):
            dk.dudr(u, dmat, out=np.empty((1,) + u.shape[1:]))


# -- RK steppers: work= path bitwise vs allocating ------------------------

class TestSteppersWorkspace:
    @pytest.mark.parametrize(
        "stepper", [step_euler, step_ssprk2, step_ssprk3]
    )
    def test_work_path_bitwise(self, stepper):
        rng = np.random.default_rng(5)
        u = rng.standard_normal((4, 5, 5, 5))

        def rhs(v):
            return np.sin(v) - 0.1 * v

        plain = stepper(u, rhs, dt=1e-3)
        work = Workspace()
        with_ws = stepper(u, rhs, dt=1e-3, work=work)
        assert np.array_equal(plain, with_ws)
        # The result must not live inside the workspace (state outlives
        # the step; a later stage would clobber it otherwise).
        for buf in (work.buffer(u.shape, key=k)
                    for k in ("rk:t", "rk:u1", "rk:u2")):
            assert not np.shares_memory(with_ws, buf)


# -- full solver: reuse_workspace on/off bitwise --------------------------

class TestSolverWorkspace:
    @pytest.mark.parametrize("overlap", [False, True])
    def test_sod_bitwise_with_and_without_workspace(self, overlap):
        from repro.cli import _sod_setup
        from repro.mpi import Runtime
        from repro.perfmodel.machine import MachineModel

        def run(reuse):
            setup = _sod_setup(
                2, n=5, nelx=8, gs_method="pairwise",
                reuse_workspace=reuse,
            )

            def main(comm):
                solver, state = setup(comm)
                solver.config.overlap = overlap
                return solver.run(state, 4).u

            rt = Runtime(
                nranks=2, machine=MachineModel.preset("compton")
            )
            return rt.run(main)

        for a, b in zip(run(True), run(False)):
            assert np.array_equal(a, b)
