"""Mini-app validation methodology (Section VII future work)."""

import pytest

from repro.core import CMTBoneConfig
from repro.validation import (
    AppSignature,
    PHASES,
    cmtbone_signature,
    score,
    solver_signature,
    validation_report,
)

CONFIG = CMTBoneConfig(
    n=6, local_shape=(2, 2, 1), proc_shape=(2, 2, 1), nsteps=3,
    work_mode="real", gs_method="pairwise", monitor_every=1,
)


@pytest.fixture(scope="module")
def signatures():
    mini = cmtbone_signature(CONFIG, nranks=4)
    parent = solver_signature(CONFIG, nranks=4)
    return mini, parent


class TestSignatures:
    def test_fractions_sum_to_one(self, signatures):
        for sig in signatures:
            assert sum(sig.phase_fractions.values()) == pytest.approx(1.0)
            assert set(sig.phase_fractions) == set(PHASES)

    def test_derivative_is_largest_compute_phase_both(self, signatures):
        for sig in signatures:
            fr = sig.phase_fractions
            assert fr["derivative"] > fr["surface"]
            assert fr["derivative"] > fr["update"]

    def test_message_sizes_identical(self, signatures):
        """Both apps exchange the same DG face traces: identical
        per-message size is the strongest structural agreement."""
        mini, parent = signatures
        assert mini.mean_message_bytes == pytest.approx(
            parent.mean_message_bytes
        )

    def test_mini_app_underestimates_comm_volume(self, signatures):
        """The uncalibrated mini-app exchanges 5 traces/stage; the
        parent exchanges 11 (U + F + lambda) — a genuine proxy gap the
        methodology is supposed to find."""
        mini, parent = signatures
        assert parent.total_message_bytes > 1.5 * mini.total_message_bytes


class TestScoring:
    def test_identity_scores_one(self, signatures):
        mini, _ = signatures
        s = score(mini, mini)
        assert s.phase_similarity == pytest.approx(1.0)
        assert s.comm_volume_ratio == pytest.approx(1.0)
        assert s.overall == pytest.approx(1.0)

    def test_score_in_unit_interval(self, signatures):
        s = score(*signatures)
        for v in (s.phase_similarity, s.comm_volume_ratio,
                  s.message_size_ratio, s.mpi_fraction_ratio, s.overall):
            assert 0.0 <= v <= 1.0

    def test_reasonable_baseline_agreement(self, signatures):
        """The uncalibrated proxy must already be 'adequate' (paper's
        wording): phase breakdown mostly right, sizes exact."""
        s = score(*signatures)
        assert s.phase_similarity > 0.6
        assert s.message_size_ratio == pytest.approx(1.0)
        assert s.overall > 0.5

    def test_zero_vs_nonzero_ratio(self):
        a = AppSignature("a", dict.fromkeys(PHASES, 0.2), 1, 10,
                         12, 100, 10)
        b = AppSignature("b", dict.fromkeys(PHASES, 0.2), 1, 10,
                         12, 0, 0)
        s = score(a, b)
        assert s.comm_volume_ratio == 0.0


class TestCalibration:
    def test_exchange_fields_closes_the_volume_gap(self):
        """Setting exchange_fields=11 (validation-driven calibration)
        brings the mini-app's comm volume to the parent's."""
        calibrated = CONFIG.with_(exchange_fields=11)
        mini = cmtbone_signature(calibrated, nranks=4)
        parent = solver_signature(CONFIG, nranks=4)
        s = score(mini, parent)
        assert s.comm_volume_ratio > 0.9

    def test_calibration_improves_overall_score(self):
        parent = solver_signature(CONFIG, nranks=4)
        base = score(cmtbone_signature(CONFIG, nranks=4), parent)
        cal = score(
            cmtbone_signature(CONFIG.with_(exchange_fields=11), nranks=4),
            parent,
        )
        assert cal.overall > base.overall


class TestReport:
    def test_report_renders(self, signatures):
        text = validation_report(*signatures)
        assert "time % in derivative" in text
        assert "OVERALL" in text
        assert "CMT-bone" in text
