"""Report generation: call-graph profiler, tables, mpiP views."""

import pytest

from repro.analysis import (
    CallGraphProfiler,
    call_graph,
    flat_profile,
    merge_profiles,
    mpi_fraction_report,
    message_size_report,
    render_histogram,
    render_table,
    summarize_fractions,
    top_calls_report,
)
from repro.mpi import Runtime
from repro.mpi.clock import VirtualClock


class TestCallGraphProfiler:
    def test_nested_regions_self_time(self):
        clock = VirtualClock()
        prof = CallGraphProfiler(clock)
        with prof.region("outer"):
            clock.advance(1.0)
            with prof.region("inner"):
                clock.advance(3.0)
            clock.advance(0.5)
        outer = prof.stats["outer"]
        inner = prof.stats["inner"]
        assert outer.total == pytest.approx(4.5)
        assert outer.self_time == pytest.approx(1.5)
        assert inner.total == pytest.approx(3.0)
        assert inner.self_time == pytest.approx(3.0)

    def test_edges_recorded(self):
        clock = VirtualClock()
        prof = CallGraphProfiler(clock)
        with prof.region("a"):
            for _ in range(3):
                with prof.region("b"):
                    clock.advance(1.0)
        assert prof.edges[("a", "b")] == (3, pytest.approx(3.0))

    def test_exception_safe(self):
        clock = VirtualClock()
        prof = CallGraphProfiler(clock)
        with pytest.raises(RuntimeError):
            with prof.region("x"):
                clock.advance(1.0)
                raise RuntimeError()
        assert prof.stats["x"].calls == 1
        assert prof.stats["x"].total == pytest.approx(1.0)

    def test_merge_profiles(self):
        profs = []
        for _ in range(2):
            clock = VirtualClock()
            p = CallGraphProfiler(clock)
            with p.region("k"):
                clock.advance(2.0)
            profs.append(p)
        merged = merge_profiles(profs)
        assert merged["k"].calls == 2
        assert merged["k"].total == pytest.approx(4.0)

    def test_flat_profile_sorted_and_percented(self):
        clock = VirtualClock()
        prof = CallGraphProfiler(clock)
        with prof.region("big"):
            clock.advance(9.0)
        with prof.region("small"):
            clock.advance(1.0)
        text = flat_profile(prof.stats)
        lines = text.splitlines()
        assert "name" in lines[0]
        assert "big" in lines[1]
        assert "90.00" in lines[1]

    def test_call_graph_render(self):
        clock = VirtualClock()
        prof = CallGraphProfiler(clock)
        with prof.region("rhs"):
            with prof.region("ax_"):
                clock.advance(1.0)
        text = call_graph([prof])
        assert "rhs" in text
        assert "-> ax_" in text


class TestTables:
    def test_render_table_aligned(self):
        text = render_table(["a", "bbb"], [(1, 2.5), (10, 0.125)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bbb" in lines[0]

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [(1, 2)])

    def test_histogram(self):
        text = render_histogram(["x", "y"], [1.0, 2.0])
        lines = text.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_histogram_mismatch(self):
        with pytest.raises(ValueError):
            render_histogram(["x"], [1.0, 2.0])

    def test_histogram_zero_values(self):
        text = render_histogram(["x"], [0.0])
        assert "x" in text


class TestMpipReports:
    def _profile(self):
        def main(comm):
            other = 1 - comm.rank
            req = comm.irecv(source=other, site="exchange")
            comm.isend(bytes(1000), dest=other, site="exchange")
            req.wait(site="exchange")
            comm.compute(seconds=1e-3)
            comm.allreduce(1.0, site="residual")

        rt = Runtime(nranks=2)
        rt.run(main)
        return rt.job_profile()

    def test_fraction_report(self):
        text = mpi_fraction_report(self._profile())
        assert "% time spent in MPI" in text
        assert "rank    0" in text
        assert "imbalance" in text

    def test_summary_values(self):
        mean, mn, mx, imb = summarize_fractions(self._profile())
        assert 0 < mn <= mean <= mx < 100
        assert imb >= 1.0

    def test_top_calls_report(self):
        text = top_calls_report(self._profile(), 5)
        assert "most expensive MPI calls" in text
        assert "MPI_" in text

    def test_message_size_report(self):
        text = message_size_report(self._profile())
        assert "avg bytes" in text
        assert "1000" in text
