"""Virtual scale-out engine (``repro.vscale``).

The contract under test (docs/virtual-scale.md): the analytic
schedule must agree with a real ``gs_setup``, the batched network
costs must be bit-identical to their scalar twins, the modeled
timelines must agree with executed sample runs within the documented
per-method tolerances, and the sampled-rank physics must stay bitwise
identical to a full execution.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codesign import Candidate, VscaleExplorer, gs_method_crossover
from repro.core import CMTBoneConfig
from repro.mpi import Runtime
from repro.perfmodel import MachineModel
from repro.perfmodel.network import NetworkModel
from repro.perfmodel.topology import (
    FatTreeTopology,
    FlatTopology,
    TorusTopology,
)
from repro.vscale import (
    DEFAULT_TOLERANCES,
    GS_METHODS,
    VirtualScaleEngine,
    VscaleError,
    build_schedule,
    schedule_matches_handle,
)


def _cfg(**over):
    base = dict(
        n=5, local_shape=(2, 2, 1), nsteps=2, neq=3, work_mode="proxy"
    )
    base.update(over)
    return CMTBoneConfig(**base)


# -- analytic schedule vs real gs_setup ---------------------------------


class TestSchedule:
    @pytest.mark.parametrize("nranks", [4, 12, 16])
    def test_matches_real_gs_setup(self, nranks):
        config = _cfg(gs_method="pairwise")
        sched = build_schedule(config, nranks)

        def main(comm):
            from repro.core.cmtbone import CMTBone

            app = CMTBone(comm, config)
            return schedule_matches_handle(sched, app.handle, comm.rank)

        mismatches = Runtime(nranks=nranks).run(main)
        assert mismatches == [None] * nranks

    def test_pos_is_reverse_index(self):
        sched = build_schedule(_cfg(), 24)
        ranks = np.arange(sched.nranks)[:, None]
        k = sched.n_neighbors
        # nbr[nbr[r, j], pos[r, j]] == r: the j-th neighbour's
        # pos-column message is the one addressed back to r.
        back = sched.nbr[sched.nbr, sched.pos]
        assert (back == np.broadcast_to(ranks, (sched.nranks, k))).all()

    def test_rows_sorted(self):
        sched = build_schedule(_cfg(), 12)
        assert (np.diff(sched.nbr, axis=1) > 0).all()


# -- batched network costs == scalar, bitwise ---------------------------


TOPOLOGIES = [
    FlatTopology(),
    FatTreeTopology(ranks_per_node=4, nodes_per_switch=3),
    TorusTopology(shape=(4, 3, 2)),
]


class TestBatchedNetwork:
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: type(t).__name__)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_batched_equals_scalar(self, topo, data):
        # Both the shm path (same node / same rank) and the tcp path
        # (cross-node, hop-dependent latency) must match bitwise.
        net = NetworkModel(g_inject=1.5e-10, topology=topo)
        n = data.draw(st.integers(min_value=1, max_value=16))
        ranks = st.integers(min_value=0, max_value=23)
        src = np.array(
            data.draw(st.lists(ranks, min_size=n, max_size=n)),
            dtype=np.int64,
        )
        dst = np.array(
            data.draw(st.lists(ranks, min_size=n, max_size=n)),
            dtype=np.int64,
        )
        nbytes = np.array(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=10**7),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=np.int64,
        )
        hops = topo.hops_batch(src, dst)
        send = net.send_overhead_batch(nbytes)
        recv = net.recv_overhead_batch(nbytes)
        transit = net.transit_batch(src, dst, nbytes)
        msg = net.message_time_batch(src, dst, nbytes)
        for i in range(n):
            s, d, b = int(src[i]), int(dst[i]), int(nbytes[i])
            assert hops[i] == topo.hops(s, d)
            assert send[i] == net.send_overhead(b)
            assert recv[i] == net.recv_overhead(b)
            assert transit[i] == net.transit(s, d, b)
            assert msg[i] == net.message_time(s, d, b)


# -- modeled vs executed agreement --------------------------------------


class TestAgreement:
    @pytest.mark.parametrize("method", GS_METHODS)
    def test_small_p(self, method):
        engine = VirtualScaleEngine(_cfg(), nranks=16, sample=16)
        a = engine.validate(method)
        assert a.ok, a.describe()
        assert a.schedule_mismatch is None

    @pytest.mark.parametrize("method", ["pairwise", "crystal"])
    def test_non_power_of_two(self, method):
        # Crystal's fold/unfold and pairwise's odd grids both engage.
        engine = VirtualScaleEngine(_cfg(), nranks=12, sample=12)
        a = engine.validate(method)
        assert a.ok, a.describe()

    def test_overlap_hides_communication(self):
        engine = VirtualScaleEngine(
            _cfg(overlap=True), nranks=16, sample=16
        )
        a = engine.validate("pairwise")
        assert a.ok, a.describe()
        assert a.executed_hidden.max() > 0.0
        assert a.modeled_hidden.max() > 0.0

    def test_compute_imbalance(self):
        engine = VirtualScaleEngine(
            _cfg(compute_imbalance=0.3), nranks=8, sample=8
        )
        a = engine.validate("pairwise")
        assert a.ok, a.describe()
        # The jitter must actually spread the modeled ranks.
        assert a.modeled.max() > a.modeled.min()

    def test_tolerance_override_can_fail(self):
        engine = VirtualScaleEngine(_cfg(), nranks=8, sample=8)
        a = engine.validate("crystal", tolerance=1e-18)
        assert a.tolerance == 1e-18
        assert not a.ok
        assert DEFAULT_TOLERANCES["crystal"] > 1e-18
        assert engine.validate("crystal").ok

    def test_sampled_physics_bitwise_identical(self):
        # The sample run IS the physics: digests of the 4-rank sample
        # equal the first 4 digests of the fully executed 8-rank job.
        config = _cfg(n=4, work_mode="real")
        sampled = VirtualScaleEngine(config, nranks=8, sample=4)
        full = VirtualScaleEngine(config, nranks=8, sample=8)
        d_sample = sampled.execute_sample("pairwise").digests
        d_full = full.execute_sample("pairwise").digests
        assert d_sample == d_full[: len(d_sample)]


# -- the modeled timelines at virtual scale -----------------------------


class TestModel:
    def test_scale_sweep_is_pure_modeling(self):
        engine = VirtualScaleEngine(_cfg(), nranks=65536, sample=8)
        sweep = engine.sweep(GS_METHODS, [1024, 65536])
        for p, by_method in sweep.items():
            for m, t in by_method.items():
                assert t.nranks == p
                assert t.total.shape == (p,)
                assert (t.total > 0).all()
                assert t.step_seconds > 0
        # The paper's Fig. 7 finding holds at scale: the dense global
        # vector makes allreduce collapse far from the others.
        big = sweep[65536]
        assert (
            big["allreduce"].step_seconds
            > 10 * big["pairwise"].step_seconds
        )

    def test_model_rejects_unknown_method(self):
        engine = VirtualScaleEngine(_cfg(), nranks=8)
        with pytest.raises(VscaleError):
            engine.model("hypercube")

    def test_constructor_rejections(self):
        with pytest.raises(VscaleError):
            VirtualScaleEngine(_cfg(pack_fields=True))
        with pytest.raises(VscaleError):
            VirtualScaleEngine(_cfg(lb_mode="auto"))
        with pytest.raises(VscaleError):
            VirtualScaleEngine(_cfg(nsteps=0))
        with pytest.raises(VscaleError):
            VirtualScaleEngine(_cfg(), nranks=0)
        with pytest.raises(VscaleError):
            VirtualScaleEngine(_cfg(), nranks=8, sample=0)

    def test_fault_extrapolation(self):
        engine = VirtualScaleEngine(_cfg(), nranks=16384, sample=8)
        fx = engine.extrapolate_faults("pairwise", rank_mtbf_hours=5000)
        assert fx.job_mtbf_seconds == pytest.approx(
            5000 * 3600 / 16384
        )
        assert fx.interval_seconds > 0
        assert fx.interval_steps >= 1
        assert 0 < fx.overhead_fraction < 1
        assert fx.effective_step_seconds > fx.step_seconds

    def test_report_text(self):
        engine = VirtualScaleEngine(_cfg(), nranks=256, sample=8)
        text = engine.report(
            ("pairwise",), validate=True, rank_mtbf_hours=5000
        )
        assert "P=256" in text
        assert "[OK] pairwise" in text
        assert "% time in MPI (modeled, pairwise)" in text
        assert "Young/Daly" in text


# -- what-if exploration ------------------------------------------------


class TestExploration:
    def test_explorer_reuses_executed_profile(self):
        base = MachineModel.preset("compton")
        from repro.codesign import scale_machine

        candidates = [
            Candidate("base", base),
            Candidate("fastnet", scale_machine(base, net_latency=0.5)),
            Candidate("fatpipe", scale_machine(base, net_bandwidth=4.0)),
            Candidate("fastcpu", scale_machine(base, cpu_speed=2.0)),
        ]
        explorer = VscaleExplorer(
            config=_cfg(), nranks=1024, sample=8,
            methods=("pairwise",),
        )
        evals = explorer.sweep(candidates)
        assert len(evals) == 4
        # Only two distinct compute models -> only two executed jobs.
        assert explorer.executed_jobs == 2
        by_name = {e.name: e for e in evals}
        assert by_name["fastnet"].step_time < by_name["base"].step_time
        assert by_name["fastcpu"].compute_time < (
            by_name["base"].compute_time
        )

    def test_gs_method_crossover_rows(self):
        rows = gs_method_crossover(
            _cfg(), [64, 1024], sample=8,
            methods=("pairwise", "allreduce"),
        )
        assert [p for p, _t, _w in rows] == [64, 1024]
        for _p, times, winner in rows:
            assert set(times) == {"pairwise", "allreduce"}
            assert winner == min(times, key=times.get)


# -- CLI ---------------------------------------------------------------


class TestCli:
    def test_vscale_study(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "vscale", "--ranks", "256", "--sample", "8",
                "--proxy", "-N", "5", "--local", "2,2,1",
                "--steps", "2", "--mtbf", "5000",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "P=256" in out
        assert "[OK]" in out and "[FAIL]" not in out
        assert "faults:" in out

    def test_vscale_json(self, capsys):
        import json

        from repro.cli import main

        rc = main(
            [
                "vscale", "--ranks", "128", "--sample", "8",
                "--proxy", "-N", "5", "--local", "2,2,1",
                "--steps", "2", "--gs-method", "pairwise", "--json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["nranks"] == 128
        assert doc["fastest"] == "pairwise"
        assert doc["agreement"]["pairwise"]["ok"] is True

    def test_vscale_agreement_failure_exits_nonzero(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "vscale", "--ranks", "64", "--sample", "8",
                "--proxy", "-N", "5", "--local", "2,2,1",
                "--steps", "2", "--gs-method", "crystal",
                "--tolerance", "1e-18",
            ]
        )
        assert rc == 1

    def test_vscale_rejects_unmodelable_config(self, capsys):
        from repro.cli import main

        rc = main(["vscale", "--ranks", "8", "--steps", "0"])
        assert rc == 2


# -- modeled mpiP summaries ---------------------------------------------


class TestModeledReport:
    def test_summarize_values(self):
        from repro.analysis.mpip import summarize_values

        mean, mn, mx, imb = summarize_values([10.0, 20.0, 30.0])
        assert (mean, mn, mx) == (20.0, 10.0, 30.0)
        assert imb == pytest.approx(1.5)
        assert summarize_values([]) == (0.0, 0.0, 0.0, 0.0)

    def test_modeled_fraction_report(self):
        from repro.analysis.mpip import modeled_fraction_report

        text = modeled_fraction_report(
            np.linspace(10.0, 30.0, 1000), title="modeled MPI"
        )
        assert "modeled MPI" in text
        assert "p95" in text
        assert "ranks=1000" in text
        assert modeled_fraction_report([]).endswith("(no ranks)")
