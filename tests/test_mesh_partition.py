"""Domain decomposition onto 3-D processor grids."""

import pytest
from hypothesis import given, strategies as st

from repro.mesh import BoxMesh, Partition, factor3


class TestFactor3:
    @given(st.integers(1, 4096))
    def test_product_and_order(self, p):
        fx, fy, fz = factor3(p)
        assert fx * fy * fz == p
        assert fx >= fy >= fz >= 1

    def test_known_values(self):
        assert factor3(256) == (8, 8, 4)   # the Fig. 7 grid
        assert factor3(8) == (2, 2, 2)
        assert factor3(1) == (1, 1, 1)
        assert factor3(7) == (7, 1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            factor3(0)


class TestPartition:
    def test_fig7_exact_setup(self):
        mesh = BoxMesh(shape=(40, 40, 16), n=10)
        part = Partition(mesh, proc_shape=(8, 8, 4))
        assert part.nranks == 256
        assert part.local_shape == (5, 5, 4)
        assert part.nel_local == 100
        assert mesh.nelgt == 25600

    def test_describe_matches_fig7_text(self):
        mesh = BoxMesh(shape=(40, 40, 16), n=10)
        text = Partition(mesh, proc_shape=(8, 8, 4)).describe()
        assert "Number of processors: 256" in text
        assert "elements per process = 100" in text
        assert "Total elements = 25600" in text
        assert "Processor Distribution (x,y,z) = 8, 8, 4" in text
        assert "Element Distribution (x,y,z) = 40, 40, 16" in text
        assert "Local Element Distribution (x,y,z) = 5, 5, 4" in text

    def test_indivisible_rejected(self):
        mesh = BoxMesh(shape=(5, 4, 4), n=3)
        with pytest.raises(ValueError, match="not divisible"):
            Partition(mesh, proc_shape=(2, 2, 2))

    def test_auto(self):
        mesh = BoxMesh(shape=(8, 8, 4), n=3)
        part = Partition.auto(mesh, 8)
        assert part.nranks == 8

    def test_rank_coords_roundtrip(self):
        mesh = BoxMesh(shape=(4, 4, 4), n=3)
        part = Partition(mesh, proc_shape=(2, 2, 2))
        for rank in range(8):
            assert part.coords_rank(part.rank_coords(rank)) == rank

    def test_every_element_owned_once(self):
        mesh = BoxMesh(shape=(4, 6, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 3, 1))
        owners = {}
        for rank in range(part.nranks):
            for ec in part.local_elements(rank):
                assert ec not in owners
                owners[ec] = rank
                assert part.owner_of(ec) == rank
        assert len(owners) == mesh.nelgt

    def test_local_index_roundtrip(self):
        mesh = BoxMesh(shape=(4, 4, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 2, 1))
        for rank in range(part.nranks):
            for lidx, ec in enumerate(part.local_elements(rank)):
                assert part.local_index(rank, ec) == lidx

    def test_local_index_rejects_foreign_element(self):
        mesh = BoxMesh(shape=(4, 4, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 2, 1))
        foreign = part.local_elements(3)[0]
        with pytest.raises(ValueError):
            part.local_index(0, foreign)

    def test_rank_coords_out_of_range(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 1, 1))
        with pytest.raises(ValueError):
            part.rank_coords(2)

    @given(st.sampled_from([1, 2, 3, 4, 6, 8, 12]))
    def test_equal_load(self, p):
        """Every rank owns exactly nelgt / P elements."""
        fx, fy, fz = factor3(p)
        mesh = BoxMesh(shape=(2 * fx, 2 * fy, 2 * fz), n=3)
        part = Partition(mesh, proc_shape=(fx, fy, fz))
        for rank in range(p):
            assert len(part.local_elements(rank)) == mesh.nelgt // p


class TestDegenerateShapes:
    """Boundary/interior queries on the smallest legal decompositions."""

    def test_one_element_per_rank(self):
        import numpy as np

        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 2, 2))
        for rank in range(8):
            mask = part.boundary_mask(rank)
            # The single element touches every cut face: all boundary.
            assert mask.tolist() == [True]
            assert part.interior_local_indices(rank).size == 0
            assert np.array_equal(part.boundary_local_indices(rank), [0])
            (ec,) = part.local_elements(rank)
            assert part.local_index(rank, ec) == 0

    def test_flat_column_split_along_k(self):
        import numpy as np

        mesh = BoxMesh(shape=(1, 1, 8), n=3)
        part = Partition(mesh, proc_shape=(1, 1, 4))
        for rank in range(4):
            mask = part.boundary_mask(rank)
            # Only z is cut; each 2-element column is all boundary.
            assert mask.tolist() == [True, True]
            assert part.interior_local_indices(rank).size == 0
            for lidx, ec in enumerate(part.local_elements(rank)):
                assert part.local_index(rank, ec) == lidx
        with pytest.raises(ValueError):
            part.local_index(0, (0, 0, 7))

    def test_flat_column_unsplit_axis_is_interior(self):
        mesh = BoxMesh(shape=(1, 1, 6), n=3)
        part = Partition(mesh, proc_shape=(1, 1, 1))
        mask = part.boundary_mask(0)
        # Single rank: no axis is cut, every element is interior.
        assert not mask.any()
        assert part.interior_local_indices(0).tolist() == [0, 1, 2, 3, 4, 5]
        assert part.boundary_local_indices(0).size == 0

    def test_flat_column_middle_elements_interior(self):
        mesh = BoxMesh(shape=(1, 1, 8), n=3)
        part = Partition(mesh, proc_shape=(1, 1, 2))
        mask = part.boundary_mask(0)
        # 4-element column, only the two cut faces are boundary.
        assert mask.tolist() == [True, False, False, True]
        assert part.interior_local_indices(0).tolist() == [1, 2]
