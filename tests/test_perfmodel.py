"""Machine, network, and topology cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.perfmodel import (
    CpuModel,
    FatTreeTopology,
    FlatTopology,
    MachineModel,
    NetworkModel,
    TorusTopology,
    mean_hops,
)


class TestTopologies:
    def test_flat(self):
        t = FlatTopology()
        assert t.hops(3, 3) == 0
        assert t.hops(0, 5) == 1
        assert t.max_hops() == 1

    def test_fat_tree_levels(self):
        t = FatTreeTopology(ranks_per_node=4, nodes_per_switch=2)
        assert t.hops(0, 0) == 0
        assert t.hops(0, 3) == 1      # same node
        assert t.hops(0, 7) == 2      # same leaf switch
        assert t.hops(0, 8) == 4      # across core
        assert t.same_node(0, 3)
        assert not t.same_node(0, 4)

    def test_fat_tree_validation(self):
        with pytest.raises(ValueError):
            FatTreeTopology(ranks_per_node=0)

    def test_torus_coords_roundtrip(self):
        t = TorusTopology(shape=(4, 3, 2))
        for rank in range(t.nranks):
            x, y, z = t.coords(rank)
            assert rank == x + 4 * (y + 3 * z)

    def test_torus_wraparound(self):
        t = TorusTopology(shape=(8, 1, 1))
        assert t.hops(0, 7) == 1      # wraps
        assert t.hops(0, 4) == 4      # diameter
        assert t.max_hops() == 4

    def test_torus_manhattan(self):
        t = TorusTopology(shape=(4, 4, 4))
        assert t.hops(0, t.coords_inv((1, 1, 1))) == 3 if hasattr(
            t, "coords_inv"
        ) else True
        # direct: rank (1,1,1) = 1 + 4*(1 + 4*1) = 21
        assert t.hops(0, 21) == 3

    def test_torus_bad_rank(self):
        with pytest.raises(ValueError):
            TorusTopology(shape=(2, 2, 2)).coords(8)

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_torus_symmetry(self, a, b):
        t = TorusTopology(shape=(4, 4, 4))
        assert t.hops(a, b) == t.hops(b, a)

    def test_mean_hops(self):
        t = FlatTopology()
        assert mean_hops(t, range(4)) == 1.0
        assert mean_hops(t, [0]) == 0.0


class TestNetworkModel:
    def test_transit_grows_with_size(self):
        net = NetworkModel()
        assert net.transit(0, 1, 10_000) > net.transit(0, 1, 10)

    def test_transit_grows_with_hops(self):
        net = NetworkModel(topology=TorusTopology(shape=(8, 1, 1)))
        assert net.transit(0, 4, 100) > net.transit(0, 1, 100)

    def test_same_node_cheaper(self):
        net = NetworkModel(
            topology=FatTreeTopology(ranks_per_node=4, nodes_per_switch=2)
        )
        assert net.transit(0, 1, 1000) < net.transit(0, 30, 1000)

    def test_self_transit_uses_shm(self):
        net = NetworkModel()
        assert net.transit(2, 2, 100) == pytest.approx(
            net.shm_latency + 100 / net.shm_bandwidth
        )

    def test_overheads(self):
        net = NetworkModel(o_send=1e-6, o_recv=2e-6, g_inject=1e-9)
        assert net.send_overhead(1000) == pytest.approx(1e-6 + 1e-6)
        assert net.recv_overhead(1000) == pytest.approx(2e-6)

    def test_message_time_composes(self):
        net = NetworkModel()
        total = net.message_time(0, 1, 512)
        assert total == pytest.approx(
            net.send_overhead(512) + net.transit(0, 1, 512)
            + net.recv_overhead(512)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkModel(latency=-1e-6)

    def test_describe(self):
        assert "bw=" in NetworkModel().describe()


class TestCpuModel:
    def test_peak_flops(self):
        cpu = CpuModel(ghz=2.0e9, flops_per_cycle=8.0)
        assert cpu.peak_flops == pytest.approx(1.6e10)

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuModel(ghz=0)
        with pytest.raises(ValueError):
            CpuModel(mem_bandwidth=-1)


class TestMachineModel:
    def test_roofline_compute_bound(self):
        m = MachineModel()
        t = m.compute_seconds(flops=m.cpu.peak_flops)  # 1 second of flops
        assert t == pytest.approx(1.0)

    def test_roofline_memory_bound(self):
        m = MachineModel()
        t = m.compute_seconds(flops=1.0, mem_bytes=m.cpu.mem_bandwidth * 2)
        assert t == pytest.approx(2.0)

    def test_efficiency_scales(self):
        m = MachineModel()
        t1 = m.compute_seconds(flops=1e9, efficiency=1.0)
        t2 = m.compute_seconds(flops=1e9, efficiency=0.5)
        assert t2 == pytest.approx(2 * t1)

    def test_bad_efficiency(self):
        with pytest.raises(ValueError):
            MachineModel().compute_seconds(flops=1.0, efficiency=0.0)
        with pytest.raises(ValueError):
            MachineModel().compute_seconds(flops=1.0, efficiency=1.5)

    @pytest.mark.parametrize(
        "name", ["compton", "opteron6378", "i5-2500", "generic"]
    )
    def test_presets_build(self, name):
        m = MachineModel.preset(name)
        assert m.name == name
        assert m.cpu.peak_flops > 0

    def test_preset_name_normalization(self):
        assert MachineModel.preset("I5_2500").name == "i5-2500"

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown machine preset"):
            MachineModel.preset("cray-1")

    def test_opteron_l1_from_paper(self):
        """Paper: 'The size of both L1 data cache ... is 48KB'."""
        assert MachineModel.preset("opteron6378").cpu.l1_dcache == 48 * 1024

    def test_compton_clock(self):
        """Compton: Sandy Bridge E5-2670 at 2.6 GHz."""
        assert MachineModel.preset("compton").cpu.ghz == pytest.approx(2.6e9)

    def test_with_network(self):
        m = MachineModel.preset("compton")
        net = NetworkModel(latency=9e-6)
        m2 = m.with_network(net)
        assert m2.network.latency == 9e-6
        assert m.network.latency != 9e-6  # original untouched

    def test_available_presets(self):
        assert "compton" in MachineModel.available_presets()
