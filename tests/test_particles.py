"""Lagrangian particle tracking: interpolation, advection, migration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.gll import gll_points
from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver.particles import (
    ParticleCloud,
    ParticleTracker,
    interpolate_at,
    seed_particles,
)

MESH = BoxMesh(shape=(4, 2, 2), n=5, lengths=(2.0, 1.0, 1.0))
PART = Partition(MESH, proc_shape=(2, 2, 1))


class TestParticleCloud:
    def test_len_and_validation(self):
        c = ParticleCloud(ids=[1, 2], pos=np.zeros((2, 3)))
        assert len(c) == 2
        with pytest.raises(ValueError):
            ParticleCloud(ids=[1], pos=np.zeros((2, 3)))

    def test_concatenate_and_empty(self):
        a = ParticleCloud(ids=[1], pos=np.ones((1, 3)))
        b = ParticleCloud.empty()
        c = ParticleCloud.concatenate([a, b])
        assert len(c) == 1
        assert len(ParticleCloud.concatenate([])) == 0

    def test_select(self):
        c = ParticleCloud(ids=[1, 2, 3], pos=np.zeros((3, 3)))
        sub = c.select(np.array([True, False, True]))
        assert sub.ids.tolist() == [1, 3]


class TestInterpolation:
    def test_exact_on_polynomial_field(self):
        n = 5
        x = np.asarray(gll_points(n))
        r = x[:, None, None]
        s = x[None, :, None]
        t = x[None, None, :]
        field = np.stack([(r**2 * s + t**3 + 1.0), (r * s * t)], axis=0)
        rng = np.random.default_rng(0)
        pts = rng.uniform(-1, 1, size=(20, 3))
        elements = rng.integers(0, 2, size=20)
        vals = interpolate_at(field, pts, elements)
        for i, (p, e) in enumerate(zip(pts, elements)):
            if e == 0:
                exact = p[0] ** 2 * p[1] + p[2] ** 3 + 1.0
            else:
                exact = p[0] * p[1] * p[2]
            assert vals[i] == pytest.approx(exact, abs=1e-11)

    def test_at_nodes_returns_nodal_values(self):
        n = 4
        field = np.random.default_rng(1).standard_normal((1, n, n, n))
        x = np.asarray(gll_points(n))
        pts = np.array([[x[1], x[2], x[3]]])
        val = interpolate_at(field, pts, np.array([0]))
        assert val[0] == pytest.approx(field[0, 1, 2, 3])


class TestLocate:
    def _tracker(self, comm):
        return ParticleTracker(comm, PART)

    def test_locate_center_of_elements(self):
        def main(comm):
            tr = self._tracker(comm)
            hx, hy, hz = MESH.element_lengths
            pos = np.array([[hx * 1.5, hy * 0.5, hz * 0.5]])
            ec, ref = tr.locate(pos)
            return ec.tolist(), ref.tolist()

        ec, ref = Runtime(nranks=4).run(main)[0]
        assert ec == [[1, 0, 0]]
        np.testing.assert_allclose(ref, [[0.0, 0.0, 0.0]], atol=1e-12)

    def test_wrap(self):
        def main(comm):
            tr = self._tracker(comm)
            pos = np.array([[2.3, -0.2, 1.4]])
            return tr.wrap(pos).tolist()

        wrapped = Runtime(nranks=4).run(main)[0]
        np.testing.assert_allclose(
            wrapped, [[0.3, 0.8, 0.4]], atol=1e-12
        )

    def test_owner_ranks_match_partition(self):
        def main(comm):
            tr = self._tracker(comm)
            coords = np.array(
                [list(ec) for ec in MESH.iter_elements()], dtype=np.int64
            )
            mine = tr.owner_ranks(coords)
            expect = [PART.owner_of(tuple(c)) for c in coords]
            return mine.tolist(), expect

        mine, expect = Runtime(nranks=4).run(main)[0]
        assert mine == expect


class TestSeedAndMigrate:
    def test_seed_partitions_globally_unique(self):
        def main(comm):
            tr = ParticleTracker(comm, PART)
            cloud = seed_particles(tr, 200, seed=3)
            return cloud.ids.tolist()

        res = Runtime(nranks=4).run(main)
        all_ids = sorted(i for ids in res for i in ids)
        assert all_ids == list(range(200))

    def test_migrate_moves_to_owner(self):
        def main(comm):
            tr = ParticleTracker(comm, PART)
            # Rank 0 creates particles everywhere; everyone else none.
            if comm.rank == 0:
                rng = np.random.default_rng(9)
                pos = rng.random((50, 3)) * np.array(MESH.lengths)
                cloud = ParticleCloud(np.arange(50), pos)
            else:
                cloud = ParticleCloud.empty()
            cloud = tr.migrate(cloud)
            # After migration every local particle is owned here.
            if len(cloud):
                ec, _ = tr.locate(cloud.pos)
                owners = tr.owner_ranks(ec)
                assert set(owners.tolist()) == {comm.rank}
            return len(cloud), tr.global_count(cloud)

        res = Runtime(nranks=4).run(main)
        assert all(total == 50 for _, total in res)
        assert sum(n for n, _ in res) == 50

    @given(st.integers(0, 1000))
    @settings(max_examples=5, deadline=None)
    def test_property_migration_preserves_ids(self, seed):
        def main(comm):
            tr = ParticleTracker(comm, PART)
            cloud = seed_particles(tr, 64, seed=seed)
            for _ in range(2):
                rng = np.random.default_rng(seed + comm.rank)
                cloud = ParticleCloud(
                    cloud.ids,
                    tr.wrap(cloud.pos + rng.uniform(-0.3, 0.3,
                                                    cloud.pos.shape)),
                )
                cloud = tr.migrate(cloud)
            return cloud.ids.tolist()

        res = Runtime(nranks=4).run(main)
        all_ids = sorted(i for ids in res for i in ids)
        assert all_ids == list(range(64))


class TestAdvection:
    def test_uniform_flow_exact(self):
        def main(comm):
            tr = ParticleTracker(comm, PART)
            nel, n = PART.nel_local, MESH.n
            velocity = np.zeros((3, nel, n, n, n))
            velocity[0] = 0.25
            velocity[1] = -0.5
            cloud = seed_particles(tr, 40, seed=1)
            start = {int(i): p.copy() for i, p in zip(cloud.ids, cloud.pos)}
            start_all = comm.allgather(start)
            merged = {}
            for d in start_all:
                merged.update(d)
            dt = 0.05
            steps = 6
            for _ in range(steps):
                cloud = tr.advect(cloud, velocity, dt)
            t = dt * steps
            errs = []
            for i, p in zip(cloud.ids, cloud.pos):
                p0 = merged[int(i)]
                expect = tr.wrap(
                    (p0 + t * np.array([0.25, -0.5, 0.0]))[None]
                )[0]
                errs.append(np.max(np.abs(p - expect)))
            count = tr.global_count(cloud)
            return max(errs, default=0.0), count

        res = Runtime(nranks=4).run(main)
        assert all(c == 40 for _, c in res)
        assert max(e for e, _ in res) < 1e-12

    def test_rotating_flow_stays_on_circle(self):
        """Solid-body rotation: radius is (nearly) conserved by RK2."""
        mesh = BoxMesh(shape=(4, 4, 1), n=6, lengths=(1.0, 1.0, 1.0))
        part = Partition(mesh, proc_shape=(2, 2, 1))

        def main(comm):
            tr = ParticleTracker(comm, part)
            nel, n = part.nel_local, mesh.n
            coords = np.stack(
                [mesh.element_nodes(ec)
                 for ec in part.local_elements(comm.rank)],
                axis=1,
            )
            x, y = coords[0], coords[1]
            velocity = np.zeros((3, nel, n, n, n))
            velocity[0] = -(y - 0.5)
            velocity[1] = x - 0.5
            if comm.rank == 0:
                cloud = ParticleCloud(
                    ids=[0], pos=np.array([[0.7, 0.5, 0.5]])
                )
            else:
                cloud = ParticleCloud.empty()
            cloud = tr.migrate(cloud)
            dt = 0.02
            for _ in range(50):
                cloud = tr.advect(cloud, velocity, dt)
            if len(cloud):
                p = cloud.pos[0]
                r = np.hypot(p[0] - 0.5, p[1] - 0.5)
                return float(r)
            return None

        res = Runtime(nranks=4).run(main)
        radii = [r for r in res if r is not None]
        assert len(radii) == 1
        assert radii[0] == pytest.approx(0.2, abs=0.01)
