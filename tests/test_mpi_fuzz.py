"""Property-based fuzzing of the MPI substrate.

Random traffic matrices — delivery must always be exact, complete,
FIFO per channel, and deadlock-free, and virtual time must be
deterministic across repeat runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import Runtime, waitall, waitany


def random_plan(seed, nranks, max_msgs=4):
    """A reproducible traffic plan: list of (src, dst, tag, length, id)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(0, max_msgs * nranks + 1))
    plan = []
    for k in range(n):
        plan.append((
            int(rng.integers(0, nranks)),
            int(rng.integers(0, nranks)),
            int(rng.integers(0, 3)),
            int(rng.integers(1, 64)),
            k,
        ))
    return plan


def run_plan(plan, nranks):
    """Execute a plan: each rank posts its receives, sends, waits."""

    def main(comm):
        me = comm.rank
        my_recvs = [
            (src, tag, length, k)
            for (src, dst, tag, length, k) in plan
            if dst == me
        ]
        my_sends = [
            (dst, tag, length, k)
            for (src, dst, tag, length, k) in plan
            if src == me
        ]
        reqs = [
            comm.irecv(source=src, tag=tag)
            for (src, tag, _l, _k) in my_recvs
        ]
        for dst, tag, length, k in my_sends:
            comm.isend(np.full(length, float(k)), dest=dst, tag=tag)
        got = waitall(reqs)
        comm.barrier()
        return my_recvs, got, comm.clock.now

    return Runtime(nranks=nranks).run(main)


class TestTrafficFuzz:
    @given(st.integers(0, 100_000), st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_multiset_and_fifo(self, seed, nranks):
        """Every planned message arrives exactly once, with correct
        contents, and per-(src, tag) channels preserve send order."""
        plan = random_plan(seed, nranks)
        res = run_plan(plan, nranks)
        for me, (my_recvs, got, _t) in enumerate(res):
            got_ids = sorted(int(p[0]) for p in got)
            want_ids = sorted(
                k for (_s, d, _t2, _l, k) in plan if d == me
            )
            assert got_ids == want_ids
            # Payload lengths match the plan entry they claim to be.
            for payload in got:
                k = int(payload[0])
                length = next(l for (_s, _d, _t2, l, kk) in plan
                              if kk == k)
                assert len(payload) == length
                assert np.all(payload == float(k))
            # FIFO per (src, tag) channel.
            chan_seen = {}
            for (src, tag, _l, _k), payload in zip(my_recvs, got):
                chan_seen.setdefault((src, tag), []).append(
                    int(payload[0])
                )
            for (src, tag), ids in chan_seen.items():
                expect = [
                    k for (s, d, t, _l, k) in plan
                    if s == src and d == me and t == tag
                ]
                assert ids == expect

    @given(st.integers(0, 100_000))
    @settings(max_examples=10, deadline=None)
    def test_virtual_time_deterministic(self, seed):
        plan = random_plan(seed, 3)
        t1 = [t for _r, _g, t in run_plan(plan, 3)]
        t2 = [t for _r, _g, t in run_plan(plan, 3)]
        assert t1 == t2

    @given(st.integers(0, 10_000), st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_random_collective_mix(self, seed, nranks):
        """Interleave a plan with collectives; nothing cross-matches."""
        plan = random_plan(seed, nranks, max_msgs=2)

        def main(comm):
            me = comm.rank
            reqs = [
                comm.irecv(source=src, tag=tag)
                for (src, dst, tag, _l, _k) in plan
                if dst == me
            ]
            total = comm.allreduce(me)
            for (src, dst, tag, length, k) in plan:
                if src == me:
                    comm.isend(np.full(length, float(k)), dest=dst,
                               tag=tag)
            gathered = comm.allgather(me)
            got = waitall(reqs)
            comm.barrier()
            return total, gathered, sorted(int(p[0]) for p in got)

        res = Runtime(nranks=nranks).run(main)
        expect_total = sum(range(nranks))
        for me, (total, gathered, ids) in enumerate(res):
            assert total == expect_total
            assert gathered == list(range(nranks))
            assert ids == sorted(
                k for (_s, d, _t, _l, k) in plan if d == me
            )


class TestWaitany:
    def test_returns_first_completable(self):
        """Only tag-2 is in flight when waitany runs -> index 1."""

        def main(comm):
            if comm.rank == 0:
                reqs = [
                    comm.irecv(source=1, tag=1),
                    comm.irecv(source=1, tag=2),
                ]
                idx, payload = waitany(reqs)
                comm.send("ack", dest=1, tag=9)
                rest = reqs[0].wait()
                return idx, payload, rest
            comm.send("two", dest=0, tag=2)
            comm.recv(source=0, tag=9)       # rank 0 got "two" already
            comm.send("one", dest=0, tag=1)
            return None

        idx, payload, rest = Runtime(nranks=2).run(main)[0]
        assert (idx, payload) == (1, "two")
        assert rest == "one"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            waitany([])

    def test_send_requests_complete_immediately(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.isend(5, dest=1)
                idx, _ = waitany([req])
                comm.barrier()
                return idx
            comm.recv(source=0)
            comm.barrier()
            return None

        assert Runtime(nranks=2).run(main)[0] == 0
