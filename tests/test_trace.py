"""Message tracing and traffic analysis."""


from repro.analysis.traffic import (
    hop_weighted_bytes,
    injection_timeline,
    neighbor_degree,
    size_histogram,
    traffic_matrix,
    traffic_report,
)
from repro.core import CMTBoneConfig, run_cmtbone
from repro.mpi import Runtime
from repro.mpi.trace import MessageTrace
from repro.perfmodel import FlatTopology


def traced_run(nranks=4):
    cfg = CMTBoneConfig(
        n=5, local_shape=(2, 1, 1), proc_shape=(2, 2, 1), nsteps=2,
        work_mode="proxy", gs_method="pairwise",
    )
    rt = Runtime(nranks=nranks, trace_messages=True)
    rt.run(run_cmtbone, args=(cfg,))
    return rt


class TestTraceCollection:
    def test_disabled_by_default(self):
        rt = Runtime(nranks=2)
        rt.run(lambda comm: comm.allreduce(1))
        assert rt.trace is None

    def test_events_collected_and_ordered(self):
        rt = traced_run()
        trace = rt.trace
        assert len(trace) > 0
        events = trace.events()
        times = [e.wire_vtime for e in events]
        assert times == sorted(times)

    def test_trace_bytes_match_profile(self):
        """Trace totals agree with the mpiP profile's byte counts."""
        rt = traced_run()
        sent_in_profile = sum(
            r.bytes_total for r in rt.job_profile().aggregates()
            if r.op in ("MPI_Send", "MPI_Isend")
        )
        # Trace sees *all* messages incl. collective internals, so it
        # is a superset of the profiled p2p bytes.
        assert rt.trace.total_bytes >= sent_in_profile

    def test_rank_events_program_order(self):
        rt = traced_run()
        for r in range(4):
            evs = rt.trace.rank_events(r)
            seqs = [e.seq for e in evs]
            assert seqs == sorted(seqs)


class TestExport:
    def test_csv_roundtrip_rowcount(self, tmp_path):
        rt = traced_run()
        path = tmp_path / "trace.csv"
        n = rt.trace.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == n + 1  # header
        assert lines[0].startswith("seq,src,dst")

    def test_jsonl_roundtrip(self, tmp_path):
        rt = traced_run()
        path = tmp_path / "trace.jsonl"
        n = rt.trace.to_jsonl(path)
        back = MessageTrace.from_jsonl(path)
        assert len(back) == n == len(rt.trace)
        assert back.total_bytes == rt.trace.total_bytes
        assert [e for e in back.events()] == [e for e in rt.trace.events()]


class TestTrafficAnalysis:
    def _synthetic(self):
        trace = MessageTrace(4)
        data = [
            (0, 1, 100), (0, 1, 100), (1, 0, 50),
            (2, 3, 4000), (3, 2, 4000), (0, 3, 8),
        ]
        for i, (s, d, b) in enumerate(data):
            trace.record(src=s, dst=d, cid=1, tag=0, nbytes=b,
                         wire_vtime=i * 1e-6, seq=i)
        return trace

    def test_traffic_matrix(self):
        bytes_m, count_m = traffic_matrix(self._synthetic())
        assert bytes_m[0, 1] == 200
        assert count_m[0, 1] == 2
        assert bytes_m[2, 3] == 4000
        assert bytes_m.sum() == 8258

    def test_neighbor_degree(self):
        deg = neighbor_degree(self._synthetic())
        assert deg.tolist() == [2, 1, 1, 1]

    def test_size_histogram_covers_everything(self):
        rows = size_histogram(self._synthetic())
        assert sum(r[1] for r in rows) == 6
        assert sum(r[2] for r in rows) == 8258

    def test_injection_timeline(self):
        tl = injection_timeline(self._synthetic(), n_bins=5)
        assert len(tl) == 5
        assert sum(b for _, b in tl) == 8258

    def test_hop_weighted_bytes_flat(self):
        hwb = hop_weighted_bytes(self._synthetic(), FlatTopology())
        assert hwb == 8258  # all pairs one hop

    def test_report_renders(self):
        text = traffic_report(self._synthetic())
        assert "heaviest pairs" in text
        assert "message-size spectrum" in text

    def test_empty_trace(self):
        trace = MessageTrace(2)
        assert size_histogram(trace) == []
        assert injection_timeline(trace) == []
        assert trace.time_span() == 0.0


class TestCmtboneTrafficShape:
    def test_face_exchange_dominates_and_degree_is_six(self):
        """At 8 ranks on a 2x2x2 grid every rank talks to few peers,
        and the heaviest pairs carry the face-exchange N^2 messages."""
        cfg = CMTBoneConfig(
            n=6, local_shape=(2, 2, 2), proc_shape=(2, 2, 2), nsteps=3,
            work_mode="proxy", gs_method="pairwise", monitor_every=0,
        )
        rt = Runtime(nranks=8, trace_messages=True)
        rt.run(run_cmtbone, args=(cfg,))
        bytes_m, _ = traffic_matrix(rt.trace)
        # Face neighbours on the 2x2x2 periodic grid: 3 distinct peers.
        heavy = bytes_m > bytes_m.max() * 0.5
        assert heavy.sum(axis=1).max() <= 6
        assert heavy.sum(axis=1).min() >= 3
