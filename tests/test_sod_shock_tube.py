"""Sod shock tube: the DG pipeline against exact gas dynamics.

The flagship integration test: non-periodic mesh + Dirichlet ends +
shock filter + the full parallel DG machinery, validated against the
exact Riemann solution (no discretized code as "truth").
"""

import numpy as np
import pytest

from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import (
    CMTSolver,
    RHO,
    ShockFilter,
    SolverConfig,
    from_primitives,
)
from repro.solver.boundary import BoundarySpec
from repro.solver.riemann import SOD_LEFT, SOD_RIGHT, exact_riemann

N = 8
MESH = BoxMesh(shape=(16, 1, 1), n=N, periodic=(False, True, True),
               lengths=(1.0, 0.25, 0.25))
PART = Partition(MESH, proc_shape=(2, 1, 1))
T_END = 0.2
X0 = 0.5
SMOOTH = 0.02  # tanh smoothing width of the initial jump


def _dirichlet(state):
    e = state.p / 0.4 + 0.5 * state.rho * state.u**2
    return BoundarySpec(
        "dirichlet", state=(state.rho, state.rho * state.u, 0.0, 0.0, e)
    )


def run_sod(nsteps_cap=4000):
    def main(comm):
        bc = {0: _dirichlet(SOD_LEFT), 1: _dirichlet(SOD_RIGHT)}
        solver = CMTSolver(
            comm, PART,
            config=SolverConfig(
                gs_method="pairwise",
                cfl=0.3,
                shock_filter=ShockFilter(n=N, threshold=-6.0, ramp=2.0),
                boundaries=bc,
            ),
        )
        coords = np.stack(
            [MESH.element_nodes(ec)
             for ec in PART.local_elements(comm.rank)],
            axis=1,
        )
        x = coords[0]
        blend = 0.5 * (1.0 + np.tanh((x - X0) / SMOOTH))
        rho = SOD_LEFT.rho + (SOD_RIGHT.rho - SOD_LEFT.rho) * blend
        p = SOD_LEFT.p + (SOD_RIGHT.p - SOD_LEFT.p) * blend
        st = from_primitives(rho, np.zeros((3,) + rho.shape), p)
        t = 0.0
        steps = 0
        while t < T_END and steps < nsteps_cap:
            dt = min(solver.stable_dt(st), T_END - t)
            st = solver.step(st, dt)
            t += dt
            steps += 1
            assert st.is_physical(), f"unphysical at t={t}"
        # Return centreline density profile.
        xs = x[:, :, 0, 0].ravel()
        rhos = st.u[RHO][:, :, 0, 0].ravel()
        us = st.velocity()[0][:, :, 0, 0].ravel()
        ps = st.pressure()[:, :, 0, 0].ravel()
        return xs, rhos, us, ps, steps

    res = Runtime(nranks=2).run(main)
    xs = np.concatenate([r[0] for r in res])
    rhos = np.concatenate([r[1] for r in res])
    us = np.concatenate([r[2] for r in res])
    ps = np.concatenate([r[3] for r in res])
    order = np.argsort(xs)
    return xs[order], rhos[order], us[order], ps[order]


@pytest.fixture(scope="module")
def sod_result():
    return run_sod()


@pytest.fixture(scope="module")
def sod_exact():
    return exact_riemann(SOD_LEFT, SOD_RIGHT)


class TestSodShockTube:
    def test_star_region_left_plateau(self, sod_result, sod_exact):
        """Between fan tail (~0.49) and contact (~0.69): rho*L."""
        xs, rhos, us, ps = sod_result
        mask = (xs > 0.52) & (xs < 0.63)
        assert np.median(rhos[mask]) == pytest.approx(
            sod_exact.rho_star_left, rel=0.05
        )
        assert np.median(us[mask]) == pytest.approx(
            sod_exact.u_star, rel=0.05
        )
        assert np.median(ps[mask]) == pytest.approx(
            sod_exact.p_star, rel=0.05
        )

    def test_star_region_right_plateau(self, sod_result, sod_exact):
        """Between contact (~0.69) and shock (~0.85): rho*R."""
        xs, rhos, us, ps = sod_result
        mask = (xs > 0.72) & (xs < 0.82)
        assert np.median(rhos[mask]) == pytest.approx(
            sod_exact.rho_star_right, rel=0.05
        )
        assert np.median(ps[mask]) == pytest.approx(
            sod_exact.p_star, rel=0.05
        )

    def test_undisturbed_ends(self, sod_result):
        xs, rhos, _us, ps = sod_result
        left = xs < 0.15
        right = xs > 0.95
        assert np.max(np.abs(rhos[left] - 1.0)) < 0.02
        assert np.max(np.abs(rhos[right] - 0.125)) < 0.02

    def test_shock_position(self, sod_result, sod_exact):
        """The density jump to 0.125 sits near x = 0.5 + 1.7522*0.2."""
        xs, rhos, _us, _ps = sod_result
        x_shock_exact = X0 + sod_exact.shock_speed_right() * T_END
        # Find where density first drops below the midpoint between
        # rho*R and rho_R, scanning from the right plateau.
        mid = 0.5 * (sod_exact.rho_star_right + SOD_RIGHT.rho)
        candidates = xs[(rhos < mid) & (xs > 0.7)]
        x_shock_num = float(candidates.min())
        assert x_shock_num == pytest.approx(x_shock_exact, abs=0.04)

    def test_rarefaction_fan_profile(self, sod_result, sod_exact):
        """Density inside the fan matches the exact similarity profile."""
        xs, rhos, _us, _ps = sod_result
        mask = (xs > 0.30) & (xs < 0.45)
        exact_rho, _u, _p = sod_exact.profile(xs[mask], t=T_END, x0=X0)
        err = np.max(np.abs(rhos[mask] - exact_rho))
        assert err < 0.03

    def test_global_density_error(self, sod_result, sod_exact):
        """L1 density error is small over the whole tube."""
        xs, rhos, _us, _ps = sod_result
        exact_rho, _u, _p = sod_exact.profile(xs, t=T_END, x0=X0)
        l1 = float(np.mean(np.abs(rhos - exact_rho)))
        assert l1 < 0.02
