"""Box mesh indexing and geometry."""

import numpy as np
import pytest

from repro.mesh import BoxMesh


class TestIndexing:
    def test_element_count(self):
        assert BoxMesh(shape=(4, 3, 2), n=4).nelgt == 24

    def test_index_roundtrip(self):
        mesh = BoxMesh(shape=(5, 4, 3), n=3)
        for eg in range(mesh.nelgt):
            assert mesh.element_index(mesh.element_coords(eg)) == eg

    def test_lexicographic_x_fastest(self):
        mesh = BoxMesh(shape=(3, 2, 2), n=3)
        assert mesh.element_index((0, 0, 0)) == 0
        assert mesh.element_index((1, 0, 0)) == 1
        assert mesh.element_index((0, 1, 0)) == 3
        assert mesh.element_index((0, 0, 1)) == 6

    def test_iter_elements_order(self):
        mesh = BoxMesh(shape=(2, 2, 1), n=3)
        coords = list(mesh.iter_elements())
        assert coords == [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]

    def test_out_of_range(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        with pytest.raises(ValueError):
            mesh.element_index((2, 0, 0))
        with pytest.raises(ValueError):
            mesh.element_coords(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            BoxMesh(shape=(0, 1, 1), n=3)
        with pytest.raises(ValueError):
            BoxMesh(shape=(1, 1, 1), n=1)
        with pytest.raises(ValueError):
            BoxMesh(shape=(1, 1, 1), n=3, lengths=(0.0, 1.0, 1.0))


class TestGeometry:
    def test_element_lengths(self):
        mesh = BoxMesh(shape=(4, 2, 1), n=3, lengths=(2.0, 1.0, 3.0))
        assert mesh.element_lengths == (0.5, 0.5, 3.0)

    def test_jacobian_inverse_of_half_length(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3, lengths=(2.0, 2.0, 2.0))
        assert mesh.jacobian == (2.0, 2.0, 2.0)

    def test_element_nodes_cover_element(self):
        mesh = BoxMesh(shape=(2, 1, 1), n=4, lengths=(2.0, 1.0, 1.0))
        nodes = mesh.element_nodes((1, 0, 0))
        assert nodes.shape == (3, 4, 4, 4)
        assert nodes[0].min() == pytest.approx(1.0)
        assert nodes[0].max() == pytest.approx(2.0)
        assert nodes[1].min() == pytest.approx(0.0)
        assert nodes[1].max() == pytest.approx(1.0)

    def test_adjacent_elements_share_interface_nodes(self):
        mesh = BoxMesh(shape=(2, 1, 1), n=5)
        left = mesh.element_nodes((0, 0, 0))
        right = mesh.element_nodes((1, 0, 0))
        np.testing.assert_allclose(left[0, -1], right[0, 0])


class TestPointCounts:
    def test_periodic_unique_points(self):
        mesh = BoxMesh(shape=(4, 4, 4), n=3, periodic=(True,) * 3)
        assert mesh.unique_points_shape() == (8, 8, 8)
        assert mesh.unique_point_count() == 512

    def test_nonperiodic_unique_points(self):
        mesh = BoxMesh(shape=(4, 4, 4), n=3, periodic=(False,) * 3)
        assert mesh.unique_points_shape() == (9, 9, 9)

    def test_mixed_periodicity(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=4, periodic=(True, False, True))
        assert mesh.unique_points_shape() == (6, 7, 6)

    def test_total_points_redundant(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=4)
        assert mesh.total_points == 8 * 64
        assert mesh.points_per_element == 64
