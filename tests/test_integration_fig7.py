"""Integration: the Fig. 7 experiment at reduced scale.

The full benchmark (256 ranks) lives in ``benchmarks/``; here a
64-rank version checks the *shape* claims end-to-end:

* pairwise exchange beats the crystal router for CMT-bone's 6-fat-
  message face exchange;
* the allreduce method is the most expensive of the three for both
  mini-apps once the mesh is non-trivial;
* both mini-apps pick their winner consistently across ranks.
"""

import pytest

from repro.core import CMTBoneConfig, NekboneConfig, fig7_table
from repro.core.cmtbone import CMTBone
from repro.core.nekbone import Nekbone
from repro.mpi import Runtime
from repro.perfmodel import MachineModel

P = 64
PROC = (4, 4, 4)


@pytest.fixture(scope="module")
def fig7_small():
    cmt_cfg = CMTBoneConfig(
        n=6, local_shape=(2, 2, 2), proc_shape=PROC,
        work_mode="proxy", nsteps=0,
    )
    nek_cfg = NekboneConfig(
        n=6, local_shape=(2, 2, 2), proc_shape=PROC,
        work_mode="proxy", cg_iterations=0,
    )

    def main(comm):
        cmt = CMTBone(comm, cmt_cfg)
        nek = Nekbone(comm, nek_cfg)
        return {
            "cmt_autotune": cmt.autotune,
            "cmt_method": cmt.handle.method,
            "nek_autotune": nek.autotune,
            "nek_method": nek.handle.method,
            "cmt_neighbors": len(cmt.handle.neighbors),
            "nek_neighbors": len(nek.handle.neighbors),
        }

    rt = Runtime(nranks=P, machine=MachineModel.preset("compton"))
    return rt.run(main)


class TestFig7Shape:
    def test_cmtbone_pairwise_beats_crystal(self, fig7_small):
        t = fig7_small[0]["cmt_autotune"]
        assert t["pairwise"].avg < t["crystal"].avg

    def test_cmtbone_chooses_pairwise(self, fig7_small):
        assert fig7_small[0]["cmt_method"] == "pairwise"

    def test_allreduce_most_expensive_for_both(self, fig7_small):
        for app in ("cmt_autotune", "nek_autotune"):
            t = fig7_small[0][app]
            assert t["allreduce"].avg > t["pairwise"].avg
            assert t["allreduce"].avg > t["crystal"].avg

    def test_nekbone_crystal_closer_than_for_cmtbone(self, fig7_small):
        """Crystal's penalty vs pairwise is smaller for Nekbone (26
        small messages) than for CMT-bone (6 large ones)."""
        cmt = fig7_small[0]["cmt_autotune"]
        nek = fig7_small[0]["nek_autotune"]
        cmt_ratio = cmt["crystal"].avg / cmt["pairwise"].avg
        nek_ratio = nek["crystal"].avg / nek["pairwise"].avg
        assert nek_ratio < cmt_ratio

    def test_neighbor_structure(self, fig7_small):
        assert fig7_small[0]["cmt_neighbors"] == 6
        assert fig7_small[0]["nek_neighbors"] == 26

    def test_all_ranks_agree_on_winner(self, fig7_small):
        assert len({r["cmt_method"] for r in fig7_small}) == 1
        assert len({r["nek_method"] for r in fig7_small}) == 1

    def test_table_renders(self, fig7_small):
        text = fig7_table(
            fig7_small[0]["cmt_autotune"], fig7_small[0]["nek_autotune"]
        )
        assert "CMT-bone" in text and "Nekbone" in text
        assert "pairwise exchange" in text and "crystal router" in text

    def test_timings_positive_and_ordered(self, fig7_small):
        for app in ("cmt_autotune", "nek_autotune"):
            for t in fig7_small[0][app].values():
                assert 0 < t.mn <= t.avg <= t.mx
