"""Job-service tier: queue policy, worker pool, artifact cache, and the
reusable procs-backend worker mode.

The load-bearing assertions are the bitwise ones: a job run through
the service (artifact-cache hit or miss, fresh or reused worker) must
produce exactly the digest and virtual time a standalone run of the
same spec produces.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    ArtifactCache,
    DiskArtifactStore,
    JobQueue,
    JobResult,
    JobSpec,
    Service,
    SetupArtifact,
    WorkerPool,
    run_campaign,
    run_job,
    spec_artifact_key,
)

SMALL = {"n": 5, "nel": 8, "nsteps": 2}
SOD = {"n": 5, "nelx": 8, "nsteps": 2}


def small_spec(i=0, **kw):
    kw.setdefault("params", dict(SMALL))
    return JobSpec(kind="cmtbone", name=f"j{i}", nranks=2, **kw)


# ---------------------------------------------------------------------
# JobSpec / JobResult
# ---------------------------------------------------------------------


class TestJobSpec:
    def test_json_round_trip(self):
        spec = small_spec(priority=3, submitter="alice")
        back = JobSpec.from_json(spec.to_json())
        assert back == spec

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec(kind="nope")

    def test_rejects_bad_nranks(self):
        with pytest.raises(ValueError, match="nranks"):
            JobSpec(kind="cmtbone", nranks=0)

    def test_small_classification(self):
        assert small_spec().is_small()
        big = JobSpec(kind="cmtbone", nranks=8,
                      params={"n": 25, "nel": 64, "nsteps": 100})
        assert not big.is_small()

    def test_result_round_trip_ignores_unknown_fields(self):
        doc = JobResult(job_id="x", kind="cmtbone").to_json()
        doc["future_field"] = 1
        assert JobResult.from_json(doc).job_id == "x"


# ---------------------------------------------------------------------
# JobQueue policy
# ---------------------------------------------------------------------


def drain_queue(queue):
    """Pop every batch the queue will currently give out."""
    batches = []
    while True:
        batch = queue.next_batch()
        if not batch:
            return batches
        batches.append([e.spec for e in batch])


class TestJobQueue:
    def run(self, coro):
        return asyncio.run(coro)

    def test_priority_order_with_fifo_ties(self):
        async def main():
            q = JobQueue(batch_max=1)
            lo = small_spec(0, priority=0)
            hi = small_spec(1, priority=5)
            lo2 = small_spec(2, priority=0)
            for s in (lo, hi, lo2):
                q.submit(s)
            order = [b[0].job_id for b in drain_queue(q)]
            assert order == [hi.job_id, lo.job_id, lo2.job_id]

        self.run(main())

    def test_duplicate_id_rejected(self):
        async def main():
            q = JobQueue()
            spec = small_spec()
            q.submit(spec)
            with pytest.raises(ValueError, match="duplicate"):
                q.submit(spec)

        self.run(main())

    def test_small_jobs_batch_up_to_max(self):
        async def main():
            q = JobQueue(batch_max=3)
            for i in range(5):
                q.submit(small_spec(i))
            sizes = [len(b) for b in drain_queue(q)]
            assert sizes == [3, 2]
            assert q.stats.batched_dispatches == 2

        self.run(main())

    def test_large_jobs_travel_alone(self):
        async def main():
            q = JobQueue(batch_max=4)
            big_params = {"n": 25, "nel": 64, "nsteps": 100}
            q.submit(small_spec(0))
            q.submit(JobSpec(kind="cmtbone", name="big", nranks=8,
                             params=big_params))
            q.submit(small_spec(1))
            batches = drain_queue(q)
            # The big job neither joins a batch nor accepts companions,
            # and later smalls never jump over it (strict FIFO order).
            assert [len(b) for b in batches] == [1, 1, 1]
            assert batches[1][0].name == "big"

        self.run(main())

    def test_quota_defers_excess_jobs(self):
        async def main():
            q = JobQueue(quota=1, batch_max=4)
            a0 = small_spec(0, submitter="alice")
            a1 = small_spec(1, submitter="alice")
            b0 = small_spec(2, submitter="bob")
            for s in (a0, a1, b0):
                q.submit(s)
            first = [s.job_id for b in drain_queue(q) for s in b]
            # alice's second job waits even though nothing else queues.
            assert first == [a0.job_id, b0.job_id]
            assert q.stats.quota_deferrals >= 1
            q.job_finished(a0.job_id, JobResult(a0.job_id, "cmtbone"))
            nxt = [s.job_id for b in drain_queue(q) for s in b]
            assert nxt == [a1.job_id]

        self.run(main())

    def test_cancel_pending_resolves_future(self):
        async def main():
            q = JobQueue()
            spec = small_spec()
            fut = q.submit(spec)
            assert q.cancel(spec.job_id)
            result = await fut
            assert result.status == "cancelled"
            assert drain_queue(q) == []
            assert q.stats.cancelled == 1

        self.run(main())

    def test_cancel_dispatched_job_refused(self):
        async def main():
            q = JobQueue()
            spec = small_spec()
            q.submit(spec)
            q.next_batch()
            assert not q.cancel(spec.job_id)
            assert not q.cancel("unknown-id")

        self.run(main())

    def test_submit_outside_event_loop_raises(self):
        # Regression: submit used the deprecated get_event_loop(),
        # which silently created a loop nobody runs — the future then
        # never resolves.  It must be an immediate, explicit error.
        q = JobQueue()
        with pytest.raises(RuntimeError, match="running event loop"):
            q.submit(small_spec())
        assert q.stats.submitted == 0

    def test_submit_works_from_plain_coroutine(self):
        async def main():
            q = JobQueue()
            fut = q.submit(small_spec())
            assert asyncio.isfuture(fut) and not fut.done()
            return q.stats.submitted

        assert asyncio.run(main()) == 1

    def test_readmit_requeues_with_retry_accounting(self):
        async def main():
            q = JobQueue(quota=1, batch_max=1)
            spec = small_spec(0, submitter="alice")
            q.submit(spec)
            (entry,) = q.next_batch()
            assert q.running_count() == 1
            q.readmit(entry)
            # The quota slot is released until it dispatches again.
            assert q.running_count() == 0
            assert entry.retries == 1
            assert q.stats.readmitted == 1
            (again,) = q.next_batch()
            assert again is entry
            q.readmit(again, charge=False)  # collateral: no charge
            assert again.retries == 1
            assert q.stats.readmitted == 2

        self.run(main())

    def test_readmit_rejects_undispatched_job(self):
        async def main():
            q = JobQueue()
            q.submit(small_spec())
            with pytest.raises(ValueError, match="not dispatched"):
                q.readmit(next(iter(q._jobs.values())))

        self.run(main())


# ---------------------------------------------------------------------
# Artifact cache
# ---------------------------------------------------------------------


class TestArtifactCache:
    def test_partial_entries_invisible(self):
        cache = ArtifactCache()
        art = SetupArtifact(handle=None, method="pairwise", autotune=None)
        cache.store("k", 0, art, nranks=2)
        assert cache.lookup("k", 2) is None  # only rank 0 stored
        cache.store("k", 1, art, nranks=2)
        entry = cache.lookup("k", 2)
        assert entry is not None and entry.nranks == 2
        assert cache.stats.snapshot() == {
            "hits": 1, "misses": 1, "stores": 2,
            "disk_hits": 0, "disk_stores": 0, "races_merged": 0,
        }

    def test_nranks_mismatch_is_a_miss(self):
        cache = ArtifactCache()
        art = SetupArtifact(handle=None, method="pairwise", autotune=None)
        cache.store("k", 0, art, nranks=1)
        assert cache.lookup("k", 2) is None

    def test_store_after_publish_is_noop(self):
        cache = ArtifactCache()
        art = SetupArtifact(handle=None, method="pairwise", autotune=None)
        cache.store("k", 0, art, nranks=1)
        cache.store("k", 0, art, nranks=1)
        assert len(cache) == 1

    def test_key_sensitive_to_config(self):
        base = spec_artifact_key(small_spec())
        assert spec_artifact_key(small_spec()) == base
        other = small_spec(params={**SMALL, "n": 6})
        assert spec_artifact_key(other) != base
        # steps don't affect setup, so they share a key
        steps = small_spec(params={**SMALL, "nsteps": 9})
        assert spec_artifact_key(steps) == base
        assert spec_artifact_key(
            JobSpec(kind="sod", params=dict(SOD))) is None

    def test_key_of_invalid_config_is_none_not_raise(self):
        # Regression: spec_artifact_key runs in the service's drive
        # loop (affinity routing); raising there killed the pump and
        # hung every submitted future.  An unbuildable config simply
        # has no cache identity.
        bad = small_spec(params={**SMALL, "work_mode": "bogus"})
        assert spec_artifact_key(bad) is None
        bad_n = small_spec(params={**SMALL, "n": "wat"})
        assert spec_artifact_key(bad_n) is None


class TestDiskArtifactCache:
    """Disk spill: restart-surviving, atomic, partial-proof, tolerant."""

    def test_restart_warm_hit_is_bitwise_identical(self, tmp_path):
        d = str(tmp_path / "spill")
        cold = run_job(small_spec(0), ArtifactCache(disk=d))
        # A *fresh* cache on the same directory simulates a service
        # restart: nothing in memory, everything from disk.
        warm_cache = ArtifactCache(disk=d)
        warm = run_job(small_spec(1), warm_cache)
        assert cold.ok and warm.ok
        assert (cold.cache_misses, cold.cache_disk_hits) == (1, 0)
        assert (warm.cache_hits, warm.cache_disk_hits) == (1, 1)
        assert warm_cache.stats.disk_hits == 1
        assert warm.digest == cold.digest
        assert warm.vtime_total == cold.vtime_total
        assert warm.vtime_comm == cold.vtime_comm

    def test_complete_entry_spills_and_partial_never_does(self, tmp_path):
        d = str(tmp_path / "spill")
        art = SetupArtifact(handle=None, method="pairwise", autotune=None)
        cache = ArtifactCache(disk=d)
        cache.store("k", 0, art, nranks=2)
        # Rank 0 of 2: nothing may reach disk yet.
        assert DiskArtifactStore(d).keys() == []
        assert cache.stats.disk_stores == 0
        cache.store("k", 1, art, nranks=2)
        assert DiskArtifactStore(d).keys() == ["k"]
        assert cache.stats.disk_stores == 1
        # And the publish API itself refuses a partial entry.
        from repro.service.artifacts import CacheEntry
        partial = CacheEntry(nranks=2, ranks={0: art}, method="pairwise")
        with pytest.raises(ValueError, match="partial"):
            DiskArtifactStore(d).publish("p", partial)

    def test_disk_entry_respects_nranks(self, tmp_path):
        d = str(tmp_path / "spill")
        art = SetupArtifact(handle=None, method="pairwise", autotune=None)
        first = ArtifactCache(disk=d)
        first.store("k", 0, art, nranks=1)
        fresh = ArtifactCache(disk=d)
        assert fresh.lookup("k", 2) is None  # wrong nranks: a miss
        assert fresh.lookup("k", 1) is not None

    def test_corrupt_index_and_blob_degrade_to_cold(self, tmp_path):
        d = str(tmp_path / "spill")
        art = SetupArtifact(handle=None, method="pairwise", autotune=None)
        cache = ArtifactCache(disk=d)
        cache.store("k", 0, art, nranks=1)
        import pathlib
        blob = pathlib.Path(cache.disk.host_dir)
        # Truncate the blob: fetch must warn and miss, not raise.
        (blob / "k-r1.pkl").write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert DiskArtifactStore(d).fetch("k", 1) is None
        # Corrupt the index: load must warn and go cold, not raise.
        (blob / "index.json").write_text("{broken")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert DiskArtifactStore(d).fetch("k", 1) is None
        # And publishing over the wreckage heals it.
        cache2 = ArtifactCache(disk=d)
        with pytest.warns(RuntimeWarning):
            cache2.store("k2", 0, art, nranks=1)
        assert "k2" in DiskArtifactStore(d).keys()

    def test_apply_refuses_advanced_clock_after_round_trip(self, tmp_path):
        d = str(tmp_path / "spill")
        assert run_job(small_spec(0), ArtifactCache(disk=d)).ok
        key = spec_artifact_key(small_spec(0))
        entry = DiskArtifactStore(d).fetch(key, 2)
        assert entry is not None
        art = entry.artifact_for(0)

        class FakeClock:
            now = 1.0

        class FakeProfile:
            records = {}

        class FakeComm:
            clock = FakeClock()
            profile = FakeProfile()

        with pytest.raises(RuntimeError, match="fresh rank"):
            art.apply(object(), FakeComm())

    def test_concurrent_publishers_merge_not_clobber(self, tmp_path):
        d = str(tmp_path / "spill")
        art = SetupArtifact(handle=None, method="pairwise", autotune=None)
        from repro.service.artifacts import CacheEntry, CacheStats
        entry = CacheEntry(nranks=1, ranks={0: art}, method="pairwise")
        a, b = DiskArtifactStore(d), DiskArtifactStore(d)
        a.publish("ka", entry)
        b.fetch("ka", 1)          # b observes the index: known={ka}
        a.publish("kc", entry)    # a races ahead of b's snapshot
        stats = CacheStats()
        b.publish("kb", entry, stats=stats)
        # b's merge kept a's concurrent key and counted the race.
        assert DiskArtifactStore(d).keys() == ["ka", "kb", "kc"]
        assert stats.races_merged == 1

    def test_hosts_do_not_share_spill_dirs(self, tmp_path, monkeypatch):
        d = str(tmp_path / "spill")
        art = SetupArtifact(handle=None, method="pairwise", autotune=None)
        ArtifactCache(disk=d).store("k", 0, art, nranks=1)
        monkeypatch.setenv("REPRO_HOST_ID", "some-other-host")
        other = ArtifactCache(disk=d)
        assert other.lookup("k", 1) is None  # different host dir


class TestExecuteBitwise:
    def test_hit_is_bitwise_identical_to_cold(self):
        cache = ArtifactCache()
        cold = run_job(small_spec(0), cache)
        warm = run_job(small_spec(1), cache)
        bare = run_job(small_spec(2), None)
        assert cold.ok and warm.ok and bare.ok
        assert (cold.cache_misses, warm.cache_hits) == (1, 1)
        assert cold.digest == warm.digest == bare.digest
        assert cold.vtime_total == warm.vtime_total == bare.vtime_total

    def test_apply_refuses_advanced_clock(self):
        cache = ArtifactCache()
        assert run_job(small_spec(0), cache).ok
        key = spec_artifact_key(small_spec(0))
        art = cache.lookup(key, 2).artifact_for(0)

        class FakeClock:
            now = 1.0

        class FakeProfile:
            records = {}

        class FakeComm:
            clock = FakeClock()
            profile = FakeProfile()

        with pytest.raises(RuntimeError, match="fresh rank"):
            art.apply(object(), FakeComm())

    def test_sod_job_matches_standalone(self):
        spec = JobSpec(kind="sod", nranks=2, params=dict(SOD))
        again = JobSpec(kind="sod", nranks=2, params=dict(SOD))
        a, b = run_job(spec), run_job(again)
        assert a.ok and b.ok
        assert a.digest == b.digest
        assert a.vtime_total == b.vtime_total

    def test_failed_job_reports_not_raises(self):
        bad = JobSpec(kind="cmtbone", nranks=2,
                      params={**SMALL, "work_mode": "bogus"})
        result = run_job(bad)
        assert result.status == "failed"
        assert "work_mode" in result.error

    def test_exit_signals_propagate_not_swallowed(self, monkeypatch):
        # Regression: run_job caught BaseException, so SystemExit /
        # KeyboardInterrupt inside a job became a "failed" result and
        # the worker refused to die — breaking the timeout-kill path.
        import repro.service.execute as execute

        def boom(spec, cache, result):
            raise SystemExit(3)

        monkeypatch.setattr(execute, "_run_cmtbone", boom)
        with pytest.raises(SystemExit):
            run_job(small_spec(0))

        def interrupt(spec, cache, result):
            raise KeyboardInterrupt

        monkeypatch.setattr(execute, "_run_cmtbone", interrupt)
        with pytest.raises(KeyboardInterrupt):
            run_job(small_spec(1))


# ---------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------


class TestWorkerPool:
    def test_worker_survives_many_jobs(self):
        with WorkerPool(nworkers=1) as pool:
            pids = set()
            for i in range(3):
                spec = small_spec(i)
                pool.dispatch(0, [spec])
                (res,) = pool.collect(0, [spec])
                assert res.ok, res.error
                pids.add(res.worker_pid)
            assert pids == {pool.worker_pids()[0]}
            assert pool.jobs_served() == 3

    def test_worker_cache_persists_across_batches(self):
        with WorkerPool(nworkers=1) as pool:
            s0, s1 = small_spec(0), small_spec(1)
            pool.dispatch(0, [s0])
            (r0,) = pool.collect(0, [s0])
            pool.dispatch(0, [s1])
            (r1,) = pool.collect(0, [s1])
            assert r0.cache_misses == 1
            assert r1.cache_hits == 1  # second batch, same worker
            assert spec_artifact_key(s1) in (
                pool._workers[0].cached_keys
            )

    def test_affinity_prefers_warm_worker(self):
        with WorkerPool(nworkers=2) as pool:
            spec = small_spec(0)
            pool.dispatch(1, [spec])
            pool.collect(1, [spec])
            assert pool.pick_worker([small_spec(1)]) == 1

    def test_mid_batch_death_partial_results(self, tmp_path):
        # Worker dies on job 2 of 3: job 1's result survives, job 2 is
        # the casualty, job 3 never started — and the batch's tally is
        # credited to the dead worker, not the cold replacement.
        flag = tmp_path / "die"
        flag.touch()
        specs = [
            small_spec(0),
            small_spec(1, params={**SMALL,
                                  "exit_if_flag": str(flag)}),
            small_spec(2),
        ]
        with WorkerPool(nworkers=1) as pool:
            old_pid = pool.worker_pids()[0]
            pool.dispatch(0, specs)
            r1, r2, r3 = pool.collect(0, specs)
            assert r1.ok and r1.cache_misses == 1
            assert r2.status == "failed" and r2.worker_died
            assert not r2.never_started and "died mid-batch" in r2.error
            assert r3.status == "failed" and r3.worker_died
            assert r3.never_started and "never started" in r3.error
            assert pool.respawns == 1
            assert pool.worker_pids()[0] != old_pid
            # Replacement starts cold for least-loaded routing; the
            # pool-wide total still counts the dead worker's batch.
            w = pool._workers[0]
            assert (w.jobs_served, w.batches_served) == (0, 0)
            assert w.cached_keys == set()  # stale advertisement gone
            assert pool.jobs_served() == 3
            # The crash consumed the flag, so a rerun goes clean.
            pool.dispatch(0, specs[1:2])
            (redo,) = pool.collect(0, specs[1:2])
            assert redo.ok

    def test_timeout_kills_worker_and_respawns(self):
        sleeper = small_spec(0, timeout_seconds=0.2,
                             params={**SMALL, "sleep_s": 30.0})
        with WorkerPool(nworkers=1) as pool:
            old_pid = pool.worker_pids()[0]
            pool.dispatch(0, [sleeper])
            (res,) = pool.collect(0, [sleeper])
            assert res.status == "failed"
            assert res.timed_out and not res.never_started
            assert "timeout" in res.error
            assert pool.timeout_kills == 1
            assert pool.respawns == 1
            assert pool.worker_pids()[0] != old_pid
            # Replacement is functional and cold.
            assert pool._workers[0].jobs_served == 0
            assert pool.jobs_served() == 1
            spec = small_spec(9)
            pool.dispatch(0, [spec])
            (ok,) = pool.collect(0, [spec])
            assert ok.ok

    def test_timeout_spares_untimed_batchmates_clock(self):
        # A 0.25s-timeout sleeper batched after a normal job must not
        # charge the normal job's runtime against its own deadline:
        # the rolling monitor arms each job's clock at its own start.
        specs = [small_spec(0),
                 small_spec(1, timeout_seconds=0.25,
                            params={**SMALL, "sleep_s": 30.0}),
                 small_spec(2)]
        with WorkerPool(nworkers=1) as pool:
            pool.dispatch(0, specs)
            r1, r2, r3 = pool.collect(0, specs)
            assert r1.ok
            assert r2.timed_out and not r2.never_started
            assert r3.never_started  # collateral, retryable for free

    def test_dead_worker_fails_batch_and_respawns(self):
        crash = JobSpec(kind="cmtbone", nranks=2,
                        params={**SMALL, "pool_test_exit": 1})
        with WorkerPool(nworkers=1) as pool:
            old_pid = pool.worker_pids()[0]
            pool._workers[0].proc.terminate()
            pool._workers[0].proc.join()
            pool._workers[0].busy = True  # dispatch() already happened
            results = pool.collect(0, [crash])
            assert results[0].status == "failed"
            assert "died" in results[0].error
            assert pool.respawns == 1
            new_pid = pool.worker_pids()[0]
            assert new_pid != old_pid
            # and the replacement actually works
            spec = small_spec(9)
            pool.dispatch(0, [spec])
            (res,) = pool.collect(0, [spec])
            assert res.ok


# ---------------------------------------------------------------------
# Service / campaigns
# ---------------------------------------------------------------------


class TestCampaign:
    def test_mixed_campaign_hits_cache_and_matches_standalone(self):
        specs = [small_spec(i) for i in range(6)]
        specs.append(JobSpec(kind="sod", name="s", nranks=2,
                             params=dict(SOD)))
        report = run_campaign(specs, nworkers=2)
        assert not report.failed
        assert report.cache_hits > 0
        assert len(report.results) == 7
        # results come back in submission order
        assert [r.job_id for r in report.results] == [
            s.job_id for s in specs
        ]
        standalone = run_job(small_spec(99))
        for r in report.results[:6]:
            assert r.digest == standalone.digest
            assert r.vtime_total == standalone.vtime_total
        assert all(r.latency_seconds > 0 for r in report.results)
        assert report.p50 <= report.p99

    def test_campaign_respects_quota(self):
        specs = [small_spec(i, submitter="solo") for i in range(4)]
        report = run_campaign(specs, nworkers=2, quota=1, batch_max=1)
        assert not report.failed
        assert report.queue_stats["quota_deferrals"] >= 1

    def test_campaign_cache_survives_service_restart(self, tmp_path):
        d = str(tmp_path / "artifacts")
        cold = run_campaign([small_spec(0)], nworkers=1, artifact_dir=d)
        warm = run_campaign([small_spec(1)], nworkers=1, artifact_dir=d)
        (c,), (w) = cold.results, warm.results[0]
        assert c.ok and w.ok
        assert (c.cache_misses, c.cache_disk_hits) == (1, 0)
        assert (w.cache_hits, w.cache_disk_hits) == (1, 1)
        assert warm.cache_disk_hits == 1
        assert w.digest == c.digest
        assert w.vtime_total == c.vtime_total

    def test_cancel_through_service(self):
        specs = [small_spec(i) for i in range(12)]

        async def main():
            async with Service(nworkers=1, batch_max=1) as svc:
                futures = [svc.submit(s) for s in specs]
                # Cancel from the back of the queue: those jobs can't
                # all have dispatched to the single worker yet.
                cancelled = [i for i in range(11, 0, -1)
                             if svc.cancel(specs[i].job_id)]
                results = await asyncio.gather(*futures)
            return cancelled, results

        cancelled, results = asyncio.run(main())
        assert cancelled, "at least one queued job should cancel"
        for i, r in enumerate(results):
            expect = "cancelled" if i in cancelled else "done"
            assert r.status == expect, (i, r.status, r.error)


# ---------------------------------------------------------------------
# Timeouts and retries through the service
# ---------------------------------------------------------------------


class TestTimeoutRetryService:
    def test_timeout_retries_until_budget_exhausted(self):
        sleeper = small_spec(0, timeout_seconds=0.2, max_retries=2,
                             params={**SMALL, "sleep_s": 30.0})
        report = run_campaign([sleeper], nworkers=1)
        (res,) = report.results
        assert res.status == "failed"
        assert res.timed_out
        assert res.retries == 2  # initial attempt + 2 retries, all killed
        assert report.queue_stats["timeouts"] == 3
        assert report.queue_stats["readmitted"] == 2
        assert len(report.timed_out) == 1

    def test_worker_death_retries_only_unfinished_jobs(self, tmp_path):
        # j2 crashes its worker on the first attempt (flag consumed);
        # the retry must rerun j2 and the never-started j3 — but NOT
        # j1, whose result from the first attempt already resolved.
        flag = tmp_path / "die-once"
        flag.touch()
        specs = [
            small_spec(0),
            small_spec(1, max_retries=1,
                       params={**SMALL, "exit_if_flag": str(flag)}),
            small_spec(2),
        ]
        report = run_campaign(specs, nworkers=1)
        r1, r2, r3 = report.results
        assert not report.failed
        assert (r1.retries, r2.retries, r3.retries) == (0, 1, 0)
        # j2 charged one retry; j3 was collateral and re-admitted free.
        assert report.queue_stats["readmitted"] == 2
        assert report.queue_stats["timeouts"] == 0
        # j1 ran on the original worker, the reruns on its replacement.
        assert r1.worker_pid != r2.worker_pid
        assert r2.worker_pid == r3.worker_pid
        assert not flag.exists()

    def test_no_retry_budget_means_terminal_failure(self, tmp_path):
        flag = tmp_path / "die"
        flag.touch()
        doomed = small_spec(0, params={**SMALL,
                                       "exit_if_flag": str(flag)})
        report = run_campaign([doomed], nworkers=1)
        (res,) = report.results
        assert res.status == "failed"
        assert res.worker_died and res.retries == 0

    def test_clean_failures_are_never_retried(self):
        bad = small_spec(0, max_retries=3,
                         params={**SMALL, "work_mode": "bogus"})
        report = run_campaign([bad], nworkers=1)
        (res,) = report.results
        assert res.status == "failed"
        assert not res.retryable
        assert res.retries == 0
        assert report.queue_stats["readmitted"] == 0


# ---------------------------------------------------------------------
# Reusable procs-backend worker mode
# ---------------------------------------------------------------------


class TestReusableProcsBackend:
    def test_reset_allows_rerun(self):
        from repro.mpi import Runtime

        def main(comm):
            comm.compute(seconds=1e-6)
            return comm.allreduce(comm.rank, site="t")

        rt = Runtime(nranks=2)
        first = rt.run(main)
        with pytest.raises(Exception, match="reset"):
            rt.run(main)
        second = rt.reset().run(main)
        assert first == second
        assert rt.clock_stats()[0].total == pytest.approx(
            rt.clock_stats()[1].total
        )

    def test_pool_reuses_workers_bitwise(self):
        from repro.mpi import Runtime
        from repro.mpi.backend import ProcsBackend

        backend = ProcsBackend(reusable=True)
        rt = Runtime(nranks=2, backend=backend)
        try:
            vtimes = []
            pid_sets = []
            for _ in range(3):
                rt.reset().run(_pool_main)
                vtimes.append([s.total for s in rt.clock_stats()])
                pid_sets.append(tuple(backend.worker_pids()))
            assert backend.jobs_served == 3
            assert len(set(pid_sets)) == 1, "workers must not re-fork"
            assert all(v == vtimes[0] for v in vtimes[1:])
        finally:
            backend.close()

        fresh = Runtime(nranks=2, backend="procs")
        fresh.run(_pool_main)
        assert [s.total for s in fresh.clock_stats()] == vtimes[0]


def _pool_main(comm):
    """Module-level SPMD main: a reusable pool requires picklability."""
    comm.compute(seconds=2e-6 * (comm.rank + 1))
    return comm.allreduce(1.0, site="pool_t")
