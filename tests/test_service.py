"""Job-service tier: queue policy, worker pool, artifact cache, and the
reusable procs-backend worker mode.

The load-bearing assertions are the bitwise ones: a job run through
the service (artifact-cache hit or miss, fresh or reused worker) must
produce exactly the digest and virtual time a standalone run of the
same spec produces.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    ArtifactCache,
    JobQueue,
    JobResult,
    JobSpec,
    Service,
    SetupArtifact,
    WorkerPool,
    run_campaign,
    run_job,
    spec_artifact_key,
)

SMALL = {"n": 5, "nel": 8, "nsteps": 2}
SOD = {"n": 5, "nelx": 8, "nsteps": 2}


def small_spec(i=0, **kw):
    kw.setdefault("params", dict(SMALL))
    return JobSpec(kind="cmtbone", name=f"j{i}", nranks=2, **kw)


# ---------------------------------------------------------------------
# JobSpec / JobResult
# ---------------------------------------------------------------------


class TestJobSpec:
    def test_json_round_trip(self):
        spec = small_spec(priority=3, submitter="alice")
        back = JobSpec.from_json(spec.to_json())
        assert back == spec

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec(kind="nope")

    def test_rejects_bad_nranks(self):
        with pytest.raises(ValueError, match="nranks"):
            JobSpec(kind="cmtbone", nranks=0)

    def test_small_classification(self):
        assert small_spec().is_small()
        big = JobSpec(kind="cmtbone", nranks=8,
                      params={"n": 25, "nel": 64, "nsteps": 100})
        assert not big.is_small()

    def test_result_round_trip_ignores_unknown_fields(self):
        doc = JobResult(job_id="x", kind="cmtbone").to_json()
        doc["future_field"] = 1
        assert JobResult.from_json(doc).job_id == "x"


# ---------------------------------------------------------------------
# JobQueue policy
# ---------------------------------------------------------------------


def drain_queue(queue):
    """Pop every batch the queue will currently give out."""
    batches = []
    while True:
        batch = queue.next_batch()
        if not batch:
            return batches
        batches.append([e.spec for e in batch])


class TestJobQueue:
    def run(self, coro):
        return asyncio.run(coro)

    def test_priority_order_with_fifo_ties(self):
        async def main():
            q = JobQueue(batch_max=1)
            lo = small_spec(0, priority=0)
            hi = small_spec(1, priority=5)
            lo2 = small_spec(2, priority=0)
            for s in (lo, hi, lo2):
                q.submit(s)
            order = [b[0].job_id for b in drain_queue(q)]
            assert order == [hi.job_id, lo.job_id, lo2.job_id]

        self.run(main())

    def test_duplicate_id_rejected(self):
        async def main():
            q = JobQueue()
            spec = small_spec()
            q.submit(spec)
            with pytest.raises(ValueError, match="duplicate"):
                q.submit(spec)

        self.run(main())

    def test_small_jobs_batch_up_to_max(self):
        async def main():
            q = JobQueue(batch_max=3)
            for i in range(5):
                q.submit(small_spec(i))
            sizes = [len(b) for b in drain_queue(q)]
            assert sizes == [3, 2]
            assert q.stats.batched_dispatches == 2

        self.run(main())

    def test_large_jobs_travel_alone(self):
        async def main():
            q = JobQueue(batch_max=4)
            big_params = {"n": 25, "nel": 64, "nsteps": 100}
            q.submit(small_spec(0))
            q.submit(JobSpec(kind="cmtbone", name="big", nranks=8,
                             params=big_params))
            q.submit(small_spec(1))
            batches = drain_queue(q)
            # The big job neither joins a batch nor accepts companions,
            # and later smalls never jump over it (strict FIFO order).
            assert [len(b) for b in batches] == [1, 1, 1]
            assert batches[1][0].name == "big"

        self.run(main())

    def test_quota_defers_excess_jobs(self):
        async def main():
            q = JobQueue(quota=1, batch_max=4)
            a0 = small_spec(0, submitter="alice")
            a1 = small_spec(1, submitter="alice")
            b0 = small_spec(2, submitter="bob")
            for s in (a0, a1, b0):
                q.submit(s)
            first = [s.job_id for b in drain_queue(q) for s in b]
            # alice's second job waits even though nothing else queues.
            assert first == [a0.job_id, b0.job_id]
            assert q.stats.quota_deferrals >= 1
            q.job_finished(a0.job_id, JobResult(a0.job_id, "cmtbone"))
            nxt = [s.job_id for b in drain_queue(q) for s in b]
            assert nxt == [a1.job_id]

        self.run(main())

    def test_cancel_pending_resolves_future(self):
        async def main():
            q = JobQueue()
            spec = small_spec()
            fut = q.submit(spec)
            assert q.cancel(spec.job_id)
            result = await fut
            assert result.status == "cancelled"
            assert drain_queue(q) == []
            assert q.stats.cancelled == 1

        self.run(main())

    def test_cancel_dispatched_job_refused(self):
        async def main():
            q = JobQueue()
            spec = small_spec()
            q.submit(spec)
            q.next_batch()
            assert not q.cancel(spec.job_id)
            assert not q.cancel("unknown-id")

        self.run(main())


# ---------------------------------------------------------------------
# Artifact cache
# ---------------------------------------------------------------------


class TestArtifactCache:
    def test_partial_entries_invisible(self):
        cache = ArtifactCache()
        art = SetupArtifact(handle=None, method="pairwise", autotune=None)
        cache.store("k", 0, art, nranks=2)
        assert cache.lookup("k", 2) is None  # only rank 0 stored
        cache.store("k", 1, art, nranks=2)
        entry = cache.lookup("k", 2)
        assert entry is not None and entry.nranks == 2
        assert cache.stats.snapshot() == {
            "hits": 1, "misses": 1, "stores": 2
        }

    def test_nranks_mismatch_is_a_miss(self):
        cache = ArtifactCache()
        art = SetupArtifact(handle=None, method="pairwise", autotune=None)
        cache.store("k", 0, art, nranks=1)
        assert cache.lookup("k", 2) is None

    def test_store_after_publish_is_noop(self):
        cache = ArtifactCache()
        art = SetupArtifact(handle=None, method="pairwise", autotune=None)
        cache.store("k", 0, art, nranks=1)
        cache.store("k", 0, art, nranks=1)
        assert len(cache) == 1

    def test_key_sensitive_to_config(self):
        base = spec_artifact_key(small_spec())
        assert spec_artifact_key(small_spec()) == base
        other = small_spec(params={**SMALL, "n": 6})
        assert spec_artifact_key(other) != base
        # steps don't affect setup, so they share a key
        steps = small_spec(params={**SMALL, "nsteps": 9})
        assert spec_artifact_key(steps) == base
        assert spec_artifact_key(
            JobSpec(kind="sod", params=dict(SOD))) is None


class TestExecuteBitwise:
    def test_hit_is_bitwise_identical_to_cold(self):
        cache = ArtifactCache()
        cold = run_job(small_spec(0), cache)
        warm = run_job(small_spec(1), cache)
        bare = run_job(small_spec(2), None)
        assert cold.ok and warm.ok and bare.ok
        assert (cold.cache_misses, warm.cache_hits) == (1, 1)
        assert cold.digest == warm.digest == bare.digest
        assert cold.vtime_total == warm.vtime_total == bare.vtime_total

    def test_apply_refuses_advanced_clock(self):
        cache = ArtifactCache()
        assert run_job(small_spec(0), cache).ok
        key = spec_artifact_key(small_spec(0))
        art = cache.lookup(key, 2).artifact_for(0)

        class FakeClock:
            now = 1.0

        class FakeProfile:
            records = {}

        class FakeComm:
            clock = FakeClock()
            profile = FakeProfile()

        with pytest.raises(RuntimeError, match="fresh rank"):
            art.apply(object(), FakeComm())

    def test_sod_job_matches_standalone(self):
        spec = JobSpec(kind="sod", nranks=2, params=dict(SOD))
        again = JobSpec(kind="sod", nranks=2, params=dict(SOD))
        a, b = run_job(spec), run_job(again)
        assert a.ok and b.ok
        assert a.digest == b.digest
        assert a.vtime_total == b.vtime_total

    def test_failed_job_reports_not_raises(self):
        bad = JobSpec(kind="cmtbone", nranks=2,
                      params={**SMALL, "work_mode": "bogus"})
        result = run_job(bad)
        assert result.status == "failed"
        assert "work_mode" in result.error


# ---------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------


class TestWorkerPool:
    def test_worker_survives_many_jobs(self):
        with WorkerPool(nworkers=1) as pool:
            pids = set()
            for i in range(3):
                spec = small_spec(i)
                pool.dispatch(0, [spec])
                (res,) = pool.collect(0, [spec])
                assert res.ok, res.error
                pids.add(res.worker_pid)
            assert pids == {pool.worker_pids()[0]}
            assert pool.jobs_served() == 3

    def test_worker_cache_persists_across_batches(self):
        with WorkerPool(nworkers=1) as pool:
            s0, s1 = small_spec(0), small_spec(1)
            pool.dispatch(0, [s0])
            (r0,) = pool.collect(0, [s0])
            pool.dispatch(0, [s1])
            (r1,) = pool.collect(0, [s1])
            assert r0.cache_misses == 1
            assert r1.cache_hits == 1  # second batch, same worker
            assert spec_artifact_key(s1) in (
                pool._workers[0].cached_keys
            )

    def test_affinity_prefers_warm_worker(self):
        with WorkerPool(nworkers=2) as pool:
            spec = small_spec(0)
            pool.dispatch(1, [spec])
            pool.collect(1, [spec])
            assert pool.pick_worker([small_spec(1)]) == 1

    def test_dead_worker_fails_batch_and_respawns(self):
        crash = JobSpec(kind="cmtbone", nranks=2,
                        params={**SMALL, "pool_test_exit": 1})
        with WorkerPool(nworkers=1) as pool:
            old_pid = pool.worker_pids()[0]
            pool._workers[0].proc.terminate()
            pool._workers[0].proc.join()
            pool._workers[0].busy = True  # dispatch() already happened
            results = pool.collect(0, [crash])
            assert results[0].status == "failed"
            assert "died" in results[0].error
            assert pool.respawns == 1
            new_pid = pool.worker_pids()[0]
            assert new_pid != old_pid
            # and the replacement actually works
            spec = small_spec(9)
            pool.dispatch(0, [spec])
            (res,) = pool.collect(0, [spec])
            assert res.ok


# ---------------------------------------------------------------------
# Service / campaigns
# ---------------------------------------------------------------------


class TestCampaign:
    def test_mixed_campaign_hits_cache_and_matches_standalone(self):
        specs = [small_spec(i) for i in range(6)]
        specs.append(JobSpec(kind="sod", name="s", nranks=2,
                             params=dict(SOD)))
        report = run_campaign(specs, nworkers=2)
        assert not report.failed
        assert report.cache_hits > 0
        assert len(report.results) == 7
        # results come back in submission order
        assert [r.job_id for r in report.results] == [
            s.job_id for s in specs
        ]
        standalone = run_job(small_spec(99))
        for r in report.results[:6]:
            assert r.digest == standalone.digest
            assert r.vtime_total == standalone.vtime_total
        assert all(r.latency_seconds > 0 for r in report.results)
        assert report.p50 <= report.p99

    def test_campaign_respects_quota(self):
        specs = [small_spec(i, submitter="solo") for i in range(4)]
        report = run_campaign(specs, nworkers=2, quota=1, batch_max=1)
        assert not report.failed
        assert report.queue_stats["quota_deferrals"] >= 1

    def test_cancel_through_service(self):
        specs = [small_spec(i) for i in range(12)]

        async def main():
            async with Service(nworkers=1, batch_max=1) as svc:
                futures = [svc.submit(s) for s in specs]
                # Cancel from the back of the queue: those jobs can't
                # all have dispatched to the single worker yet.
                cancelled = [i for i in range(11, 0, -1)
                             if svc.cancel(specs[i].job_id)]
                results = await asyncio.gather(*futures)
            return cancelled, results

        cancelled, results = asyncio.run(main())
        assert cancelled, "at least one queued job should cancel"
        for i, r in enumerate(results):
            expect = "cancelled" if i in cancelled else "done"
            assert r.status == expect, (i, r.status, r.error)


# ---------------------------------------------------------------------
# Reusable procs-backend worker mode
# ---------------------------------------------------------------------


class TestReusableProcsBackend:
    def test_reset_allows_rerun(self):
        from repro.mpi import Runtime

        def main(comm):
            comm.compute(seconds=1e-6)
            return comm.allreduce(comm.rank, site="t")

        rt = Runtime(nranks=2)
        first = rt.run(main)
        with pytest.raises(Exception, match="reset"):
            rt.run(main)
        second = rt.reset().run(main)
        assert first == second
        assert rt.clock_stats()[0].total == pytest.approx(
            rt.clock_stats()[1].total
        )

    def test_pool_reuses_workers_bitwise(self):
        from repro.mpi import Runtime
        from repro.mpi.backend import ProcsBackend

        backend = ProcsBackend(reusable=True)
        rt = Runtime(nranks=2, backend=backend)
        try:
            vtimes = []
            pid_sets = []
            for _ in range(3):
                rt.reset().run(_pool_main)
                vtimes.append([s.total for s in rt.clock_stats()])
                pid_sets.append(tuple(backend.worker_pids()))
            assert backend.jobs_served == 3
            assert len(set(pid_sets)) == 1, "workers must not re-fork"
            assert all(v == vtimes[0] for v in vtimes[1:])
        finally:
            backend.close()

        fresh = Runtime(nranks=2, backend="procs")
        fresh.run(_pool_main)
        assert [s.total for s in fresh.clock_stats()] == vtimes[0]


def _pool_main(comm):
    """Module-level SPMD main: a reusable pool requires picklability."""
    comm.compute(seconds=2e-6 * (comm.rank + 1))
    return comm.allreduce(1.0, site="pool_t")
