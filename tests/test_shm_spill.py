"""Shared-memory ring spill-segment hygiene.

A spill segment is only reachable through the ring record that names
it, so every exit path — consumed, dropped, aborted, or orphaned by a
dead writer — must end in an unlink.  These tests assert no segment
with the ring's job-unique prefix survives any of them.
"""

import multiprocessing as mp
import os

import pytest

from repro.mpi.shm import _SHM_DIR, ShmRing

CTX = mp.get_context("fork")

pytestmark = pytest.mark.skipif(
    not os.path.isdir(_SHM_DIR),
    reason="needs file-backed POSIX shared memory",
)


@pytest.fixture
def ring():
    r = ShmRing(CTX, capacity=4096)
    yield r
    r.drain_spills()
    r.sweep_spills()
    r.destroy()


def big_record(ring_obj):
    """A payload over the spill threshold for this ring."""
    return b"x" * (ring_obj.capacity // 2)


class TestSpillHygiene:
    def test_consumed_spill_is_unlinked(self, ring):
        data = big_record(ring)
        assert ring.push(data)
        assert ring.orphaned_spills(), "record should have spilled"
        assert ring.pop(timeout=1.0) == data
        assert ring.orphaned_spills() == []

    def test_reset_drops_unread_spills(self, ring):
        assert ring.push(big_record(ring))
        assert ring.push(b"small")
        ring.reset()
        assert ring.orphaned_spills() == []
        assert ring.pop(timeout=0.0) is None
        # and the ring still works afterwards
        assert ring.push(b"after")
        assert ring.pop(timeout=1.0) == b"after"

    def test_dropped_record_unlinks_its_spill(self, ring):
        # Fill the ring to fewer free bytes than even a spill *record*
        # (which only carries the segment name) needs, then give up:
        # the segment made for the dropped record must not leak.
        while True:
            free = ring.capacity - (ring._tail() - ring._head())
            if free < 64:  # less than a spill record's ~45 bytes + pad
                break
            # chunks stay under the spill threshold so they fill the
            # ring inline instead of spilling themselves
            assert ring.push(b"f" * (min(free, 517) - 5))
        assert not ring.push(big_record(ring), give_up=lambda: True)
        assert ring.orphaned_spills() == []

    def test_sweep_reclaims_orphan_from_dead_writer(self, ring):
        from multiprocessing import shared_memory

        # Simulate a writer that died between creating its segment and
        # publishing the ring record.
        name = f"{ring.spill_prefix}_{os.getpid()}_999"
        seg = shared_memory.SharedMemory(name=name, create=True, size=16)
        seg.close()
        assert name in ring.orphaned_spills()
        assert ring.sweep_spills() == 1
        assert ring.orphaned_spills() == []

    def test_prefix_is_job_unique(self, ring):
        other = ShmRing(CTX, capacity=4096)
        try:
            assert other.spill_prefix != ring.spill_prefix
            assert other.push(big_record(other))
            # Sweeping one ring must not touch the other's segments.
            assert ring.sweep_spills() == 0
            assert other.orphaned_spills()
            assert other.pop(timeout=1.0) is not None
        finally:
            other.drain_spills()
            other.sweep_spills()
            other.destroy()
