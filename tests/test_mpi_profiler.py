"""mpiP-style profiler bookkeeping."""

import pytest

from repro.mpi import Runtime
from repro.mpi.profiler import CallRecord, JobProfile, RankProfile


class TestCallRecord:
    def test_accumulates(self):
        rec = CallRecord(op="MPI_Send", site="x")
        rec.add(0.5, 100)
        rec.add(1.5, 300)
        assert rec.count == 2
        assert rec.vtime == pytest.approx(2.0)
        assert rec.bytes_total == 400
        assert rec.bytes_avg == pytest.approx(200.0)
        assert rec.vtime_max == pytest.approx(1.5)


class TestRankProfile:
    def test_record_merges_by_key(self):
        rp = RankProfile(rank=0)
        rp.record("MPI_Send", "a", 1.0, 10)
        rp.record("MPI_Send", "a", 2.0, 20)
        rp.record("MPI_Send", "b", 4.0, 40)
        assert len(rp.records) == 2
        assert rp.mpi_time == pytest.approx(7.0)


class TestJobProfile:
    def _profile(self):
        prof = JobProfile(nranks=2)
        rp0, rp1 = RankProfile(0), RankProfile(1)
        rp0.record("MPI_Wait", "gs_op_", 3.0, 100)
        rp0.record("MPI_Send", "gs_op_", 1.0, 900)
        rp1.record("MPI_Wait", "gs_op_", 5.0, 100)
        prof.rank_totals = {0: (10.0, 4.0), 1: (10.0, 5.0)}
        prof.rank_profiles = [rp0, rp1]
        return prof

    def test_fractions(self):
        prof = self._profile()
        assert prof.mpi_fraction(0) == pytest.approx(0.4)
        assert prof.mpi_fractions() == [
            pytest.approx(0.4), pytest.approx(0.5)
        ]

    def test_aggregates_sorted_by_time(self):
        rows = self._profile().aggregates()
        assert rows[0].op == "MPI_Wait"
        assert rows[0].count == 2
        assert rows[0].vtime == pytest.approx(8.0)
        assert rows[0].vtime_max == pytest.approx(5.0)

    def test_top_sites_limits(self):
        assert len(self._profile().top_sites(1)) == 1

    def test_by_op(self):
        by = self._profile().by_op()
        assert by["MPI_Wait"] == pytest.approx(8.0)
        assert by["MPI_Send"] == pytest.approx(1.0)

    def test_message_rows_sorted_by_count_and_nonzero(self):
        prof = self._profile()
        rows = prof.message_size_rows()
        assert all(r.bytes_total > 0 for r in rows)
        counts = [r.count for r in rows]
        assert counts == sorted(counts, reverse=True)

    def test_message_rows_op_filter(self):
        rows = self._profile().message_size_rows(ops=["MPI_Send"])
        assert len(rows) == 1
        assert rows[0].op == "MPI_Send"

    def test_percentages_sum_to_100_of_mpi(self):
        rows = self._profile().aggregates()
        assert sum(r.mpi_pct for r in rows) == pytest.approx(100.0)


class TestEndToEnd:
    def test_sites_tagged(self):
        def main(comm):
            other = 1 - comm.rank
            req = comm.irecv(source=other, site="exchange")
            comm.isend(comm.rank, dest=other, site="exchange")
            req.wait(site="exchange")
            comm.allreduce(1.0, site="norm")

        rt = Runtime(nranks=2)
        rt.run(main)
        sites = {(r.op, r.site) for r in rt.job_profile().aggregates()}
        assert ("MPI_Isend", "exchange") in sites
        assert ("MPI_Wait", "exchange") in sites
        assert ("MPI_Allreduce", "norm") in sites

    def test_mpi_time_bounded_by_app_time(self):
        def main(comm):
            comm.compute(seconds=0.01)
            comm.allreduce(1.0)

        rt = Runtime(nranks=4)
        rt.run(main)
        prof = rt.job_profile()
        for r in range(4):
            app, mpi = prof.rank_totals[r]
            assert 0 <= mpi <= app
