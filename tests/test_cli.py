"""The command-line mini-app runner."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_coord_single_and_triple(self):
        args = build_parser().parse_args(
            ["cmtbone", "--local", "8", "--proc", "2,2,1"]
        )
        assert args.local == 8
        assert args.proc == (2, 2, 1)

    def test_bad_coord(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cmtbone", "--local", "1,2"])

    def test_machine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cmtbone", "--machine", "cray-1"])


class TestCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "compton" in out
        assert "opteron6378" in out

    def test_cmtbone_small(self, capsys):
        rc = main([
            "cmtbone", "--ranks", "4", "-N", "5", "--local", "2,1,1",
            "--steps", "2", "--gs-method", "pairwise", "--proxy",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chosen gs method: pairwise" in out
        assert "ax_" in out
        assert "MPI profile" in out

    def test_cmtbone_autotune_and_pack(self, capsys):
        rc = main([
            "cmtbone", "--ranks", "4", "-N", "5", "--local", "2,1,1",
            "--steps", "1", "--proxy", "--pack",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gs auto-tune:" in out
        assert "pairwise exchange" in out

    def test_nekbone_small(self, capsys):
        rc = main([
            "nekbone", "--ranks", "2", "-N", "5", "--local", "2,1,1",
            "--iterations", "30", "--gs-method", "pairwise",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CG iterations:" in out
        assert "residual:" in out

    def test_fig7_small(self, capsys):
        rc = main([
            "fig7", "--ranks", "4", "-N", "5", "--local", "2,1,1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CMT-bone" in out and "Nekbone" in out
        assert "crystal router" in out


class TestValidateCommand:
    def test_validate_runs(self, capsys):
        rc = main([
            "validate", "--ranks", "4", "-N", "5", "--local", "2,1,1",
            "--steps", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OVERALL" in out
        assert "uncalibrated" in out

    def test_validate_calibrated(self, capsys):
        rc = main([
            "validate", "--ranks", "4", "-N", "5", "--local", "2,1,1",
            "--steps", "2", "--calibrated",
        ])
        assert rc == 0
        assert "calibrated" in capsys.readouterr().out


class TestKernelsCommand:
    def test_kernels_table(self, capsys):
        rc = main(["kernels"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dudt" in out
        assert "2.31x" in out or "speedups" in out
