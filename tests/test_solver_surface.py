"""full2face / face2full surface data movement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.surface import (
    FACE_NORMAL_AXIS,
    FACE_NORMAL_SIGN,
    face2full_add,
    face_bytes,
    full2face,
    full2face_flops,
    full2face_multi,
)


class TestFull2Face:
    def test_shape(self):
        u = np.zeros((3, 5, 5, 5))
        assert full2face(u).shape == (3, 6, 5, 5)

    def test_face_values(self):
        n = 4
        u = np.arange(n**3, dtype=float).reshape(1, n, n, n)
        f = full2face(u)
        np.testing.assert_array_equal(f[0, 0], u[0, 0, :, :])
        np.testing.assert_array_equal(f[0, 1], u[0, -1, :, :])
        np.testing.assert_array_equal(f[0, 2], u[0, :, 0, :])
        np.testing.assert_array_equal(f[0, 3], u[0, :, -1, :])
        np.testing.assert_array_equal(f[0, 4], u[0, :, :, 0])
        np.testing.assert_array_equal(f[0, 5], u[0, :, :, -1])

    def test_constant_field(self):
        u = np.full((2, 3, 3, 3), 4.5)
        np.testing.assert_array_equal(full2face(u), 4.5)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            full2face(np.zeros((3, 3, 3)))

    def test_multi(self):
        u = np.random.default_rng(0).standard_normal((5, 2, 3, 3, 3))
        f = full2face_multi(u)
        assert f.shape == (5, 2, 6, 3, 3)
        for c in range(5):
            np.testing.assert_array_equal(f[c], full2face(u[c]))

    def test_multi_bad_shape(self):
        with pytest.raises(ValueError):
            full2face_multi(np.zeros((2, 3, 3, 3)))


class TestFace2Full:
    def test_interior_untouched(self):
        n = 5
        resid = np.zeros((1, n, n, n))
        faces = np.ones((1, 6, n, n))
        face2full_add(resid, faces)
        assert resid[0, 2, 2, 2] == 0.0

    def test_face_centers_get_one_contribution(self):
        n = 5
        resid = np.zeros((1, n, n, n))
        faces = np.ones((1, 6, n, n))
        face2full_add(resid, faces)
        assert resid[0, 0, 2, 2] == 1.0
        assert resid[0, -1, 2, 2] == 1.0

    def test_edges_and_corners_accumulate(self):
        n = 4
        resid = np.zeros((1, n, n, n))
        faces = np.ones((1, 6, n, n))
        face2full_add(resid, faces)
        assert resid[0, 0, 0, 2] == 2.0    # edge: 2 faces
        assert resid[0, 0, 0, 0] == 3.0    # corner: 3 faces

    def test_accumulates_in_place(self):
        n = 3
        resid = np.full((2, n, n, n), 1.0)
        faces = np.zeros((2, 6, n, n))
        faces[:, 0] = 5.0
        face2full_add(resid, faces)
        assert resid[0, 0, 1, 1] == 6.0
        assert resid[0, 1, 1, 1] == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            face2full_add(np.zeros((1, 3, 3, 3)), np.zeros((1, 6, 4, 4)))

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_adjointish_identity(self, seed):
        """sum(faces * full2face(u)) == sum(u * face2full_add(0, faces)).

        full2face and face2full_add are transposes of each other — the
        property that makes the SAT correction conservative.
        """
        rng = np.random.default_rng(seed)
        n, nel = 4, 2
        u = rng.standard_normal((nel, n, n, n))
        faces = rng.standard_normal((nel, 6, n, n))
        lhs = float(np.sum(faces * full2face(u)))
        lifted = np.zeros_like(u)
        face2full_add(lifted, faces)
        rhs = float(np.sum(u * lifted))
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestFaceMetadata:
    def test_normal_axes(self):
        assert FACE_NORMAL_AXIS == (0, 0, 1, 1, 2, 2)

    def test_normal_signs(self):
        assert FACE_NORMAL_SIGN == (-1.0, 1.0, -1.0, 1.0, -1.0, 1.0)

    def test_face_bytes(self):
        assert face_bytes(nel=10, n=5, ncomp=5) == 5 * 10 * 6 * 25 * 8

    def test_flops(self):
        assert full2face_flops(5, 10, ncomp=2) == 2 * 10 * 6 * 25
