"""All three gs exchange methods against a serial reference.

The key library invariant: pairwise exchange, crystal router, and the
allreduce method are interchangeable — identical results for any
numbering, any rank count, any supported reduction.
"""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gs import gs_multiplicity, gs_op, gs_setup
from repro.mesh import BoxMesh, Partition, continuous_numbering, dg_face_numbering
from repro.mpi import MAX, MIN, PROD, SUM, Runtime

METHODS = ["pairwise", "crystal", "allreduce"]


def serial_reference(all_gids, all_vals, opfn, init):
    """Combine every value sharing a gid, serially."""
    acc = {}
    for gids, vals in zip(all_gids, all_vals):
        for g, v in zip(gids.ravel(), vals.ravel()):
            g = int(g)
            acc[g] = opfn(acc[g], v) if g in acc else v
    out = []
    for gids in all_gids:
        out.append(
            np.array([acc[int(g)] for g in gids.ravel()]).reshape(gids.shape)
        )
    return out


def run_gs(nranks, gids_fn, method, op, seed=0):
    def main(comm):
        gids = gids_fn(comm.rank)
        h = gs_setup(gids, comm)
        rng = np.random.default_rng(seed + comm.rank)
        vals = rng.standard_normal(gids.shape)
        out = gs_op(h, vals, op=op, method=method)
        return gids, vals, out

    return Runtime(nranks=nranks).run(main)


OPS = {
    "sum": (SUM, lambda a, b: a + b),
    "min": (MIN, min),
    "max": (MAX, max),
    "prod": (PROD, lambda a, b: a * b),
}


class TestMethodsAgainstReference:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("opname", list(OPS))
    def test_random_numbering(self, method, opname):
        op, opfn = OPS[opname]
        rng = np.random.default_rng(42)
        tables = [rng.integers(0, 30, size=12) for _ in range(4)]
        res = run_gs(4, lambda r: tables[r], method, op)
        gids = [r[0] for r in res]
        vals = [r[1] for r in res]
        expect = serial_reference(gids, vals, opfn, None)
        for got, exp in zip((r[2] for r in res), expect):
            np.testing.assert_allclose(got, exp, rtol=1e-12)

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("nranks", [1, 2, 3, 5, 8])
    def test_rank_counts_including_non_pow2(self, method, nranks):
        rng = np.random.default_rng(nranks)
        tables = [rng.integers(0, 20, size=9) for _ in range(nranks)]
        res = run_gs(nranks, lambda r: tables[r], method, SUM)
        expect = serial_reference(
            [r[0] for r in res], [r[1] for r in res], lambda a, b: a + b, 0
        )
        for got, exp in zip((r[2] for r in res), expect):
            np.testing.assert_allclose(got, exp, rtol=1e-12)

    @pytest.mark.parametrize("method", METHODS)
    def test_dg_numbering_on_mesh(self, method):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 2, 2))
        res = run_gs(
            8, lambda r: dg_face_numbering(part, r), method, SUM, seed=5
        )
        expect = serial_reference(
            [r[0] for r in res], [r[1] for r in res], lambda a, b: a + b, 0
        )
        for got, exp in zip((r[2] for r in res), expect):
            np.testing.assert_allclose(got, exp, rtol=1e-12)

    @pytest.mark.parametrize("method", METHODS)
    def test_continuous_numbering_on_mesh(self, method):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 1, 1))
        res = run_gs(
            2, lambda r: continuous_numbering(part, r), method, SUM, seed=6
        )
        expect = serial_reference(
            [r[0] for r in res], [r[1] for r in res], lambda a, b: a + b, 0
        )
        for got, exp in zip((r[2] for r in res), expect):
            np.testing.assert_allclose(got, exp, rtol=1e-12)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_property_methods_agree(self, seed):
        """Pairwise, crystal, allreduce give identical results."""
        rng = np.random.default_rng(seed)
        tables = [rng.integers(0, 15, size=8) for _ in range(3)]
        outs = {}
        for method in METHODS:
            res = run_gs(3, lambda r: tables[r], method, SUM, seed=seed)
            outs[method] = [r[2] for r in res]
        for rank in range(3):
            np.testing.assert_allclose(
                outs["pairwise"][rank], outs["crystal"][rank], rtol=1e-12
            )
            np.testing.assert_allclose(
                outs["pairwise"][rank], outs["allreduce"][rank], rtol=1e-12
            )


class TestGsOpSemantics:
    def test_idempotent_after_first_application(self):
        """gs(add) of (gs-averaged) continuous data rescales by mult...

        The precise invariant: applying gs(add) then dividing by the
        multiplicity, twice, equals doing it once (projection).
        """
        mesh = BoxMesh(shape=(2, 2, 1), n=3)
        part = Partition(mesh, proc_shape=(2, 1, 1))

        def main(comm):
            h = gs_setup(continuous_numbering(part, comm.rank), comm)
            mult = gs_multiplicity(h)
            rng = np.random.default_rng(comm.rank)
            u = rng.standard_normal(h.shape)
            once = gs_op(h, u, op=SUM) / mult
            twice = gs_op(h, once, op=SUM) / mult
            return np.max(np.abs(twice - once))

        res = Runtime(nranks=2).run(main)
        assert max(res) < 1e-12

    def test_min_plus_max_consistency(self):
        """gs(min) <= original <= gs(max) pointwise."""
        rng = np.random.default_rng(0)
        tables = [rng.integers(0, 10, size=20) for _ in range(4)]

        def main(comm):
            h = gs_setup(tables[comm.rank], comm)
            u = np.random.default_rng(comm.rank).standard_normal(h.shape)
            lo = gs_op(h, u, op=MIN)
            hi = gs_op(h, u, op=MAX)
            return bool(np.all(lo <= u + 1e-15) and np.all(u <= hi + 1e-15))

        assert all(Runtime(nranks=4).run(main))

    def test_multiplicity_values(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 2, 2))

        def main(comm):
            h = gs_setup(continuous_numbering(part, comm.rank), comm)
            return sorted(set(np.unique(gs_multiplicity(h)).tolist()))

        res = Runtime(nranks=8).run(main)
        for values in res:
            assert values == [1.0, 2.0, 4.0, 8.0]

    def test_unknown_method_rejected(self):
        def main(comm):
            h = gs_setup(np.array([1, 2]), comm)
            gs_op(h, np.zeros(2), method="quantum")

        with pytest.raises(Exception, match="unknown gs method"):
            Runtime(nranks=1).run(main)

    def test_handle_method_default_used(self):
        def main(comm):
            h = gs_setup(np.array([comm.rank, 5]), comm)
            h.method = "crystal"
            return gs_op(h, np.ones(2), op=SUM).tolist()

        res = Runtime(nranks=2).run(main)
        assert res[0] == [1.0, 2.0]  # id 5 shared
