"""The allreduce method's cost-faithful large-scale path.

Above ``EXACT_MERGE_LIMIT`` the method stops materializing the global
sparse union (cluster-scale memory) and splits cost from data: an
empty-but-dense-sized allreduce carries the modelled time, a shadow
pairwise exchange carries the values.  These tests force the switch
with a tiny limit and check both halves.
"""

import numpy as np
import pytest

import repro.gs.allreduce_method as arm
from repro.gs import gs_op, gs_setup
from repro.mesh import BoxMesh, Partition, dg_face_numbering
from repro.mpi import SUM, Runtime

MESH = BoxMesh(shape=(4, 2, 2), n=4)
PART = Partition(MESH, proc_shape=(2, 2, 1))


def run_with_limit(limit, monkeypatch_target=None):
    def main(comm):
        h = gs_setup(dg_face_numbering(PART, comm.rank), comm)
        rng = np.random.default_rng(11 + comm.rank)
        u = rng.standard_normal(h.shape)
        out = gs_op(h, u, op=SUM, method="allreduce")
        ref = gs_op(h, u, op=SUM, method="pairwise")
        t0 = comm.clock.now
        gs_op(h, u, op=SUM, method="allreduce")
        t_all = comm.clock.now - t0
        t0 = comm.clock.now
        gs_op(h, u, op=SUM, method="pairwise")
        t_pw = comm.clock.now - t0
        return (
            float(np.max(np.abs(out - ref))),
            h.global_shared,
            t_all,
            t_pw,
        )

    return Runtime(nranks=4).run(main)


class TestShadowPath:
    def test_values_exact_in_shadow_mode(self, monkeypatch):
        monkeypatch.setattr(arm, "EXACT_MERGE_LIMIT", 0)
        res = run_with_limit(0)
        assert max(r[0] for r in res) < 1e-12
        assert all(r[1] > 0 for r in res)  # switch actually triggered

    def test_values_exact_in_exact_mode(self):
        res = run_with_limit(None)
        assert max(r[0] for r in res) < 1e-12

    def test_shadow_and_exact_same_modelled_time(self, monkeypatch):
        exact = run_with_limit(None)
        monkeypatch.setattr(arm, "EXACT_MERGE_LIMIT", 0)
        shadow = run_with_limit(0)
        for e, s in zip(exact, shadow):
            assert s[2] == pytest.approx(e[2], rel=1e-9)

    def test_allreduce_costs_more_than_pairwise(self, monkeypatch):
        monkeypatch.setattr(arm, "EXACT_MERGE_LIMIT", 0)
        res = run_with_limit(0)
        for _, _, t_all, t_pw in res:
            assert t_all > t_pw

    def test_shadow_traffic_not_profiled(self, monkeypatch):
        monkeypatch.setattr(arm, "EXACT_MERGE_LIMIT", 0)

        def main(comm):
            h = gs_setup(dg_face_numbering(PART, comm.rank), comm)
            gs_op(h, np.ones(h.shape), op=SUM, method="allreduce")

        rt = Runtime(nranks=4)
        rt.run(main)
        rows = rt.job_profile().aggregates()
        # The shadow pairwise isend/wait must NOT appear in the profile;
        # the allreduce itself must.
        sites = {(r.op, r.site) for r in rows}
        assert not any(
            op in ("MPI_Isend", "MPI_Wait") and "pairwise" in site
            for op, site in sites
        )
        assert any(op == "MPI_Allreduce" for op, _ in sites)


class TestShadowRegion:
    def test_shadow_discards_time_and_profile(self):
        def main(comm):
            other = 1 - comm.rank
            t0 = comm.clock.now
            with comm.shadow():
                req = comm.irecv(source=other, tag=1)
                comm.send(np.zeros(1000), dest=other, tag=1)
                req.wait()
            return comm.clock.now - t0

        res = Runtime(nranks=2).run(main)
        assert res == [0.0, 0.0]

    def test_shadow_preserves_data(self):
        def main(comm):
            other = 1 - comm.rank
            with comm.shadow():
                req = comm.irecv(source=other, tag=2)
                comm.send(comm.rank * 11, dest=other, tag=2)
                return req.wait()

        assert Runtime(nranks=2).run(main) == [11, 0]

    def test_clock_restored_after_shadow(self):
        def main(comm):
            comm.compute(seconds=1.0)
            with comm.shadow():
                comm.compute(seconds=99.0)
            comm.compute(seconds=0.5)
            return comm.clock.now

        assert Runtime(nranks=1).run(main) == [1.5]
