"""Unit tests for reduction ops and payload accounting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpi.datatypes import (
    BAND,
    BOR,
    BUILTIN_OPS,
    LAND,
    LOR,
    MAX,
    MIN,
    PROD,
    SUM,
    copy_payload,
    payload_nbytes,
)


class TestReduceOps:
    def test_builtin_registry(self):
        assert set(BUILTIN_OPS) == {
            "MPI_SUM", "MPI_PROD", "MPI_MIN", "MPI_MAX",
            "MPI_LAND", "MPI_LOR", "MPI_BAND", "MPI_BOR",
        }

    def test_sum_arrays(self):
        a, b = np.arange(4.0), np.ones(4)
        np.testing.assert_allclose(SUM(a, b), a + b)

    def test_min_max_scalars(self):
        assert MIN(3, 5) == 3
        assert MAX(3, 5) == 5

    def test_prod(self):
        np.testing.assert_allclose(PROD(np.full(3, 2.0), np.full(3, 4.0)), 8.0)

    def test_logical(self):
        assert LAND(True, False) == False  # noqa: E712
        assert LOR(True, False) == True  # noqa: E712

    def test_bitwise(self):
        assert BAND(np.int64(0b1100), np.int64(0b1010)) == 0b1000
        assert BOR(np.int64(0b1100), np.int64(0b1010)) == 0b1110

    @pytest.mark.parametrize(
        "op,dtype,expected",
        [
            (SUM, np.float64, 0.0),
            (PROD, np.float64, 1.0),
            (MIN, np.float64, np.inf),
            (MAX, np.float64, -np.inf),
            (MIN, np.int32, np.iinfo(np.int32).max),
            (MAX, np.int32, np.iinfo(np.int32).min),
        ],
    )
    def test_identities(self, op, dtype, expected):
        assert op.identity(np.dtype(dtype)) == expected

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=20))
    def test_sum_identity_is_neutral(self, xs):
        arr = np.array(xs)
        ident = SUM.identity(arr.dtype)
        np.testing.assert_array_equal(SUM(arr, ident), arr)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=20))
    def test_min_identity_is_neutral(self, xs):
        arr = np.array(xs)
        np.testing.assert_array_equal(MIN(arr, MIN.identity(arr.dtype)), arr)

    def test_ufunc_attached(self):
        assert SUM.ufunc is np.add
        assert MIN.ufunc is np.minimum


class TestPayloadNbytes:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10)) == 80
        assert payload_nbytes(np.zeros(10, dtype=np.float32)) == 40

    def test_scalars(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(3.14) == 8

    def test_none_is_empty(self):
        assert payload_nbytes(None) == 0

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_list_of_arrays(self):
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40

    def test_generic_object_uses_pickle_length(self):
        n = payload_nbytes({"a": 1, "b": [1, 2, 3]})
        assert n > 0

    def test_wire_nbytes_protocol(self):
        class Fake:
            __wire_nbytes__ = 12345

        assert payload_nbytes(Fake()) == 12345


class TestCopyPayload:
    def test_array_is_copied(self):
        a = np.arange(5.0)
        b = copy_payload(a)
        b[0] = 99
        assert a[0] == 0.0

    def test_scalar_passthrough(self):
        assert copy_payload(7) == 7
        assert copy_payload("x") == "x"
        assert copy_payload(None) is None

    def test_mutable_container_deep_copied(self):
        d = {"k": [1, 2]}
        c = copy_payload(d)
        c["k"].append(3)
        assert d["k"] == [1, 2]

    def test_dict_of_arrays_copied(self):
        d = {0: np.arange(3.0)}
        c = copy_payload(d)
        c[0][0] = -1
        assert d[0][0] == 0.0
