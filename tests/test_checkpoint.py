"""Checkpoint / restart of distributed solver state."""

import shutil

import numpy as np
import pytest

from repro.mesh import BoxMesh, Partition
from repro.mpi import MPIError, Runtime
from repro.solver import (
    CheckpointError,
    CMTSolver,
    SolverConfig,
    StiffenedGas,
    from_primitives,
    uniform_state,
)
from repro.solver.checkpoint import (
    load_checkpoint,
    read_manifest,
    save_checkpoint,
)

MESH = BoxMesh(shape=(4, 2, 2), n=4)
PART = Partition(MESH, proc_shape=(2, 1, 1))


def make_state(rank, eos=None):
    rng = np.random.default_rng(100 + rank)
    rho = 1.0 + 0.05 * rng.random((PART.nel_local,) + (MESH.n,) * 3)
    vel = 0.1 * rng.standard_normal((3,) + rho.shape)
    p = 1.0 + 0.05 * rng.random(rho.shape)
    return from_primitives(rho, vel, p, eos=eos)


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        def main(comm):
            st = make_state(comm.rank)
            save_checkpoint(tmp_path, comm, PART, st, step=7, time=0.35)
            back, info = load_checkpoint(tmp_path, comm, PART)
            return (
                float(np.max(np.abs(back.u - st.u))),
                info.step,
                info.time,
                type(back.eos).__name__,
            )

        res = Runtime(nranks=2).run(main)
        for err, step, time, eos_name in res:
            assert err == 0.0
            assert step == 7 and time == 0.35
            assert eos_name == "IdealGas"

    def test_stiffened_eos_round_trips(self, tmp_path):
        eos = StiffenedGas(gamma=4.0, p_inf=1.25)

        def main(comm):
            st = make_state(comm.rank, eos=eos)
            save_checkpoint(tmp_path, comm, PART, st)
            back, _ = load_checkpoint(tmp_path, comm, PART)
            return back.eos

        res = Runtime(nranks=2).run(main)
        assert all(e == eos for e in res)

    def test_manifest_contents(self, tmp_path):
        def main(comm):
            save_checkpoint(tmp_path, comm, PART, make_state(comm.rank),
                            step=3)

        Runtime(nranks=2).run(main)
        info = read_manifest(tmp_path)
        assert info.mesh_shape == (4, 2, 2)
        assert info.n == 4
        assert info.proc_shape == (2, 1, 1)
        assert info.nranks == 2
        assert info.step == 3


class TestValidation:
    def _write(self, tmp_path):
        def main(comm):
            save_checkpoint(tmp_path, comm, PART, make_state(comm.rank))

        Runtime(nranks=2).run(main)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_manifest(tmp_path)

    def test_rank_count_mismatch(self, tmp_path):
        self._write(tmp_path)
        part4 = Partition(MESH, proc_shape=(2, 2, 1))

        def main(comm):
            load_checkpoint(tmp_path, comm, part4)

        with pytest.raises(Exception, match="ranks"):
            Runtime(nranks=4).run(main)

    def test_mesh_mismatch(self, tmp_path):
        self._write(tmp_path)
        other = Partition(BoxMesh(shape=(4, 2, 2), n=5),
                          proc_shape=(2, 1, 1))

        def main(comm):
            load_checkpoint(tmp_path, comm, other)

        with pytest.raises(Exception, match="mesh"):
            Runtime(nranks=2).run(main)


class TestCrashSafety:
    """The hardened load path: every torn-checkpoint shape fails loudly.

    ``load_checkpoint`` runs inside a 2-rank job, so the offending
    rank's :class:`CheckpointError` surfaces wrapped in the runtime's
    :class:`MPIError` with the original message in the traceback text.
    """

    STEP, TIME = 4, 0.2

    def _write(self, tmp_path):
        def main(comm):
            save_checkpoint(tmp_path, comm, PART, make_state(comm.rank),
                            step=self.STEP, time=self.TIME)

        Runtime(nranks=2).run(main)

    def _load(self, tmp_path):
        def main(comm):
            load_checkpoint(tmp_path, comm, PART)

        Runtime(nranks=2).run(main)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        self._write(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "manifest.json", "state.00000.npz", "state.00001.npz",
        ]

    def test_manifest_records_commit_vtime(self, tmp_path):
        self._write(tmp_path)
        # Rank 0's clock at manifest commit: past the barriers and the
        # modelled checkpoint write, so strictly positive.
        assert read_manifest(tmp_path).vtime > 0.0

    def test_missing_rank_file_named(self, tmp_path):
        self._write(tmp_path)
        (tmp_path / "state.00001.npz").unlink()
        with pytest.raises(MPIError, match=r"state\.00001\.npz is missing"):
            self._load(tmp_path)

    def test_corrupt_rank_file_named(self, tmp_path):
        self._write(tmp_path)
        (tmp_path / "state.00001.npz").write_bytes(b"not a zipfile")
        with pytest.raises(MPIError, match=r"state\.00001\.npz is unreadable"):
            self._load(tmp_path)

    def test_rank_file_missing_array(self, tmp_path):
        self._write(tmp_path)
        path = tmp_path / "state.00001.npz"
        with open(path, "wb") as fh:       # valid npz, wrong contents
            np.savez_compressed(fh, u=np.zeros(3))
        with pytest.raises(MPIError, match="missing array"):
            self._load(tmp_path)

    def test_stale_rank_file_detected(self, tmp_path):
        self._write(tmp_path)
        path = tmp_path / "state.00001.npz"
        with np.load(path) as data:
            u = np.array(data["u"])
        with open(path, "wb") as fh:       # right shape, older step
            np.savez_compressed(fh, u=u, rank=1, step=self.STEP - 1,
                                time=self.TIME)
        with pytest.raises(MPIError, match="stale"):
            self._load(tmp_path)

    def test_misplaced_rank_file_detected(self, tmp_path):
        self._write(tmp_path)
        shutil.copy(tmp_path / "state.00000.npz",
                    tmp_path / "state.00001.npz")
        with pytest.raises(MPIError, match="belongs to rank 0"):
            self._load(tmp_path)

    def test_checkpoint_error_is_a_runtime_error(self):
        # Callers catching RuntimeError keep working.
        assert issubclass(CheckpointError, RuntimeError)


class TestRestartContinuity:
    def test_restart_continues_bitwise(self, tmp_path):
        """Run 6 steps straight vs 3 + checkpoint + restart + 3."""

        def straight(comm):
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            st = uniform_state(PART.nel_local, MESH.n, vel=(0.2, 0.0, 0.0))
            st.u[0] += 1e-3 * np.sin(
                np.arange(st.u[0].size)
            ).reshape(st.u[0].shape)
            st = solver.run(st, nsteps=6, dt=1e-3)
            return st.u

        def restarted(comm):
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            st = uniform_state(PART.nel_local, MESH.n, vel=(0.2, 0.0, 0.0))
            st.u[0] += 1e-3 * np.sin(
                np.arange(st.u[0].size)
            ).reshape(st.u[0].shape)
            st = solver.run(st, nsteps=3, dt=1e-3)
            save_checkpoint(tmp_path, comm, PART, st, step=3)
            st2, info = load_checkpoint(tmp_path, comm, PART)
            solver2 = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            st2 = solver2.run(st2, nsteps=3, dt=1e-3)
            return st2.u

        u_straight = Runtime(nranks=2).run(straight)
        u_restart = Runtime(nranks=2).run(restarted)
        for a, b in zip(u_straight, u_restart):
            np.testing.assert_array_equal(a, b)


class TestJobIdNamespacing:
    def test_manifest_records_job_id(self, tmp_path):
        def main(comm):
            save_checkpoint(tmp_path, comm, PART, make_state(comm.rank),
                            step=3, job_id="jobA")
            return read_manifest(tmp_path).job_id

        assert Runtime(nranks=2).run(main) == ["jobA", "jobA"]

    def test_mismatched_job_id_rejected(self, tmp_path):
        def main(comm):
            save_checkpoint(tmp_path, comm, PART, make_state(comm.rank),
                            job_id="jobA")
            return 0

        Runtime(nranks=2).run(main)
        with pytest.raises(CheckpointError, match="belongs to job"):
            read_manifest(tmp_path, expect_job_id="jobB")

        def try_load(comm):
            load_checkpoint(tmp_path, comm, PART, expect_job_id="jobB")

        with pytest.raises(MPIError):
            Runtime(nranks=2).run(try_load)

    def test_matching_and_legacy_manifests_accepted(self, tmp_path):
        def main(comm):
            save_checkpoint(tmp_path, comm, PART, make_state(comm.rank),
                            job_id="jobA")
            return 0

        Runtime(nranks=2).run(main)
        assert read_manifest(tmp_path, expect_job_id="jobA").job_id == "jobA"

        # Legacy manifest (no job_id recorded): any expectation passes.
        legacy = tmp_path / "legacy"

        def save_legacy(comm):
            save_checkpoint(legacy, comm, PART, make_state(comm.rank))
            return 0

        Runtime(nranks=2).run(save_legacy)
        info = read_manifest(legacy, expect_job_id="whatever")
        assert info.job_id is None

    def test_namespace_helper_isolates_jobs(self, tmp_path):
        from repro.solver import checkpoint_namespace

        a = checkpoint_namespace(tmp_path, "jobA")
        b = checkpoint_namespace(tmp_path, "jobB")
        assert a != b and a.parent == b.parent == tmp_path

    def test_concurrent_campaigns_share_base_dir(self, tmp_path):
        """Two run_with_recovery campaigns with different job ids must
        not adopt each other's checkpoints under one base directory."""
        import numpy as np

        from repro.cli import _sod_setup
        from repro.solver import run_with_recovery

        setup = _sod_setup(2, n=4, nelx=8, gs_method="pairwise")
        states_a, _ = run_with_recovery(
            setup, nranks=2, nsteps=4, checkpoint_every=2,
            checkpoint_dir=tmp_path, job_id="jobA",
        )
        states_b, _ = run_with_recovery(
            setup, nranks=2, nsteps=4, checkpoint_every=2,
            checkpoint_dir=tmp_path, job_id="jobB",
        )
        assert (tmp_path / "job-jobA").is_dir()
        assert (tmp_path / "job-jobB").is_dir()
        for a, b in zip(states_a, states_b):
            assert np.array_equal(a.u, b.u)
