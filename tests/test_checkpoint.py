"""Checkpoint / restart of distributed solver state."""

import shutil

import numpy as np
import pytest

from repro.mesh import BoxMesh, Partition
from repro.mpi import MPIError, Runtime
from repro.solver import (
    CheckpointError,
    CMTSolver,
    SolverConfig,
    StiffenedGas,
    from_primitives,
    uniform_state,
)
from repro.solver.checkpoint import (
    load_checkpoint,
    read_manifest,
    save_checkpoint,
)

MESH = BoxMesh(shape=(4, 2, 2), n=4)
PART = Partition(MESH, proc_shape=(2, 1, 1))


def make_state(rank, eos=None):
    rng = np.random.default_rng(100 + rank)
    rho = 1.0 + 0.05 * rng.random((PART.nel_local,) + (MESH.n,) * 3)
    vel = 0.1 * rng.standard_normal((3,) + rho.shape)
    p = 1.0 + 0.05 * rng.random(rho.shape)
    return from_primitives(rho, vel, p, eos=eos)


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        def main(comm):
            st = make_state(comm.rank)
            save_checkpoint(tmp_path, comm, PART, st, step=7, time=0.35)
            back, info = load_checkpoint(tmp_path, comm, PART)
            return (
                float(np.max(np.abs(back.u - st.u))),
                info.step,
                info.time,
                type(back.eos).__name__,
            )

        res = Runtime(nranks=2).run(main)
        for err, step, time, eos_name in res:
            assert err == 0.0
            assert step == 7 and time == 0.35
            assert eos_name == "IdealGas"

    def test_stiffened_eos_round_trips(self, tmp_path):
        eos = StiffenedGas(gamma=4.0, p_inf=1.25)

        def main(comm):
            st = make_state(comm.rank, eos=eos)
            save_checkpoint(tmp_path, comm, PART, st)
            back, _ = load_checkpoint(tmp_path, comm, PART)
            return back.eos

        res = Runtime(nranks=2).run(main)
        assert all(e == eos for e in res)

    def test_manifest_contents(self, tmp_path):
        def main(comm):
            save_checkpoint(tmp_path, comm, PART, make_state(comm.rank),
                            step=3)

        Runtime(nranks=2).run(main)
        info = read_manifest(tmp_path)
        assert info.mesh_shape == (4, 2, 2)
        assert info.n == 4
        assert info.proc_shape == (2, 1, 1)
        assert info.nranks == 2
        assert info.step == 3


class TestValidation:
    def _write(self, tmp_path):
        def main(comm):
            save_checkpoint(tmp_path, comm, PART, make_state(comm.rank))

        Runtime(nranks=2).run(main)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_manifest(tmp_path)

    def test_rank_count_mismatch(self, tmp_path):
        self._write(tmp_path)
        part4 = Partition(MESH, proc_shape=(2, 2, 1))

        def main(comm):
            load_checkpoint(tmp_path, comm, part4)

        with pytest.raises(Exception, match="ranks"):
            Runtime(nranks=4).run(main)

    def test_mesh_mismatch(self, tmp_path):
        self._write(tmp_path)
        other = Partition(BoxMesh(shape=(4, 2, 2), n=5),
                          proc_shape=(2, 1, 1))

        def main(comm):
            load_checkpoint(tmp_path, comm, other)

        with pytest.raises(Exception, match="mesh"):
            Runtime(nranks=2).run(main)


class TestCrashSafety:
    """The hardened load path: every torn-checkpoint shape fails loudly.

    ``load_checkpoint`` runs inside a 2-rank job, so the offending
    rank's :class:`CheckpointError` surfaces wrapped in the runtime's
    :class:`MPIError` with the original message in the traceback text.
    """

    STEP, TIME = 4, 0.2

    def _write(self, tmp_path):
        def main(comm):
            save_checkpoint(tmp_path, comm, PART, make_state(comm.rank),
                            step=self.STEP, time=self.TIME)

        Runtime(nranks=2).run(main)

    def _load(self, tmp_path):
        def main(comm):
            load_checkpoint(tmp_path, comm, PART)

        Runtime(nranks=2).run(main)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        self._write(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "manifest.json", "state.00000.npz", "state.00001.npz",
        ]

    def test_manifest_records_commit_vtime(self, tmp_path):
        self._write(tmp_path)
        # Rank 0's clock at manifest commit: past the barriers and the
        # modelled checkpoint write, so strictly positive.
        assert read_manifest(tmp_path).vtime > 0.0

    def test_missing_rank_file_named(self, tmp_path):
        self._write(tmp_path)
        (tmp_path / "state.00001.npz").unlink()
        with pytest.raises(MPIError, match=r"state\.00001\.npz is missing"):
            self._load(tmp_path)

    def test_corrupt_rank_file_named(self, tmp_path):
        self._write(tmp_path)
        (tmp_path / "state.00001.npz").write_bytes(b"not a zipfile")
        with pytest.raises(MPIError, match=r"state\.00001\.npz is unreadable"):
            self._load(tmp_path)

    def test_rank_file_missing_array(self, tmp_path):
        self._write(tmp_path)
        path = tmp_path / "state.00001.npz"
        with open(path, "wb") as fh:       # valid npz, wrong contents
            np.savez_compressed(fh, u=np.zeros(3))
        with pytest.raises(MPIError, match="missing array"):
            self._load(tmp_path)

    def test_stale_rank_file_detected(self, tmp_path):
        self._write(tmp_path)
        path = tmp_path / "state.00001.npz"
        with np.load(path) as data:
            u = np.array(data["u"])
        with open(path, "wb") as fh:       # right shape, older step
            np.savez_compressed(fh, u=u, rank=1, step=self.STEP - 1,
                                time=self.TIME)
        with pytest.raises(MPIError, match="stale"):
            self._load(tmp_path)

    def test_misplaced_rank_file_detected(self, tmp_path):
        self._write(tmp_path)
        shutil.copy(tmp_path / "state.00000.npz",
                    tmp_path / "state.00001.npz")
        with pytest.raises(MPIError, match="belongs to rank 0"):
            self._load(tmp_path)

    def test_checkpoint_error_is_a_runtime_error(self):
        # Callers catching RuntimeError keep working.
        assert issubclass(CheckpointError, RuntimeError)


class TestRestartContinuity:
    def test_restart_continues_bitwise(self, tmp_path):
        """Run 6 steps straight vs 3 + checkpoint + restart + 3."""

        def straight(comm):
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            st = uniform_state(PART.nel_local, MESH.n, vel=(0.2, 0.0, 0.0))
            st.u[0] += 1e-3 * np.sin(
                np.arange(st.u[0].size)
            ).reshape(st.u[0].shape)
            st = solver.run(st, nsteps=6, dt=1e-3)
            return st.u

        def restarted(comm):
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            st = uniform_state(PART.nel_local, MESH.n, vel=(0.2, 0.0, 0.0))
            st.u[0] += 1e-3 * np.sin(
                np.arange(st.u[0].size)
            ).reshape(st.u[0].shape)
            st = solver.run(st, nsteps=3, dt=1e-3)
            save_checkpoint(tmp_path, comm, PART, st, step=3)
            st2, info = load_checkpoint(tmp_path, comm, PART)
            solver2 = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            st2 = solver2.run(st2, nsteps=3, dt=1e-3)
            return st2.u

        u_straight = Runtime(nranks=2).run(straight)
        u_restart = Runtime(nranks=2).run(restarted)
        for a, b in zip(u_straight, u_restart):
            np.testing.assert_array_equal(a, b)
