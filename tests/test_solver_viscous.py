"""Viscous (Navier-Stokes) terms: stress, conduction, decay physics."""

import numpy as np
import pytest

from repro.kernels import derivative_matrix
from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import (
    CMTSolver,
    ENERGY,
    IdealGas,
    MX,
    RHO,
    SolverConfig,
    from_primitives,
    uniform_state,
)
from repro.solver.viscous import (
    ViscousModel,
    velocity_and_temperature,
    viscous_dt_limit,
    viscous_fluxes,
)

MESH = BoxMesh(shape=(4, 1, 1), n=7)
PART = Partition(MESH, proc_shape=(2, 1, 1))


class TestViscousModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ViscousModel(mu=-1.0)
        with pytest.raises(ValueError):
            ViscousModel(mu=1.0, prandtl=0.0)
        with pytest.raises(ValueError):
            ViscousModel(mu=1.0, bulk=-0.1)

    def test_kappa(self):
        eos = IdealGas(gamma=1.4, r_gas=287.0)
        model = ViscousModel(mu=2.0, prandtl=0.7)
        cp = 1.4 * 287.0 / 0.4
        assert model.kappa(eos) == pytest.approx(2.0 * cp / 0.7)

    def test_dt_limit_scaling(self):
        m = ViscousModel(mu=1e-3)
        dt1 = viscous_dt_limit(m, 1.0, 0.25, 8)
        dt2 = viscous_dt_limit(m, 1.0, 0.5, 8)
        assert dt2 == pytest.approx(4 * dt1)
        assert viscous_dt_limit(ViscousModel(mu=0.0), 1.0, 0.25, 8) == np.inf


class TestViscousFluxes:
    def _mesh_fields(self):
        n = 6
        mesh = BoxMesh(shape=(2, 1, 1), n=n, lengths=(2.0, 1.0, 1.0))
        part = Partition(mesh, proc_shape=(1, 1, 1))
        coords = np.stack(
            [mesh.element_nodes(ec) for ec in part.local_elements(0)],
            axis=1,
        )
        return mesh, coords, n

    def test_zero_for_uniform_state(self):
        st = uniform_state(2, 6, vel=(0.5, -0.2, 0.1))
        dmat = np.asarray(derivative_matrix(6))
        fv = viscous_fluxes(
            st.u, st.eos, ViscousModel(mu=0.1), dmat, (1.0, 1.0, 1.0)
        )
        for f in fv:
            np.testing.assert_allclose(f, 0.0, atol=1e-10)

    def test_pure_shear_stress(self):
        """v_y = s * x: tau_xy = mu * s, all normal stresses zero."""
        mesh, coords, n = self._mesh_fields()
        s = 0.3
        rho = np.ones(coords.shape[1:])
        vel = np.zeros((3,) + rho.shape)
        vel[1] = s * coords[0]
        # Constant T: set p = rho * R * T0 with T0 = 1/R.
        eos = IdealGas(gamma=1.4, r_gas=1.0)
        st = from_primitives(rho, vel, np.ones_like(rho), eos=eos)
        dmat = np.asarray(derivative_matrix(n))
        mu = 0.05
        fvx, fvy, fvz = viscous_fluxes(
            st.u, eos, ViscousModel(mu=mu), dmat, mesh.jacobian
        )
        # x-flux of y-momentum = tau_yx = mu s.
        np.testing.assert_allclose(fvx[MX + 1], mu * s, atol=1e-9)
        # no normal stress, no mass flux
        np.testing.assert_allclose(fvx[MX], 0.0, atol=1e-9)
        np.testing.assert_allclose(fvx[RHO], 0.0)
        # energy flux on the x face: v . tau_x = v_y * tau_yx.
        np.testing.assert_allclose(
            fvx[ENERGY], vel[1] * mu * s, atol=1e-8
        )

    def test_dilatation_uses_stokes_hypothesis(self):
        """v_x = s * x: tau_xx = (2 - 2/3) mu s = 4/3 mu s."""
        mesh, coords, n = self._mesh_fields()
        s = 0.2
        rho = np.ones(coords.shape[1:])
        vel = np.zeros((3,) + rho.shape)
        vel[0] = s * coords[0]
        eos = IdealGas(gamma=1.4, r_gas=1.0)
        st = from_primitives(rho, vel, np.ones_like(rho), eos=eos)
        dmat = np.asarray(derivative_matrix(n))
        mu = 0.05
        fvx, fvy, fvz = viscous_fluxes(
            st.u, eos, ViscousModel(mu=mu), dmat, mesh.jacobian
        )
        np.testing.assert_allclose(
            fvx[MX], (4.0 / 3.0) * mu * s, atol=1e-8
        )
        # Lateral normal stress: -2/3 mu s.
        np.testing.assert_allclose(
            fvy[MX + 1], -(2.0 / 3.0) * mu * s, atol=1e-8
        )

    def test_heat_flux_direction(self):
        """Energy flux carries +kappa dT/dx (flux is *subtracted*)."""
        mesh, coords, n = self._mesh_fields()
        rho = np.ones(coords.shape[1:])
        eos = IdealGas(gamma=1.4, r_gas=1.0)
        # Linear temperature in x: p = rho R T = T.
        temp = 1.0 + 0.1 * coords[0]
        st = from_primitives(rho, np.zeros((3,) + rho.shape), temp,
                             eos=eos)
        dmat = np.asarray(derivative_matrix(n))
        model = ViscousModel(mu=0.05, prandtl=0.7)
        fvx, _, _ = viscous_fluxes(st.u, eos, model, dmat, mesh.jacobian)
        np.testing.assert_allclose(
            fvx[ENERGY], model.kappa(eos) * 0.1, atol=1e-7
        )

    def test_velocity_and_temperature(self):
        st = uniform_state(1, 5, rho=2.0, vel=(1.0, 0.0, 0.0), p=4.0)
        vel, temp = velocity_and_temperature(st.u, st.eos)
        np.testing.assert_allclose(vel[0], 1.0)
        np.testing.assert_allclose(temp, 4.0 / (2.0 * st.eos.r_gas))


class TestNavierStokesSolver:
    def test_freestream_preserved(self):
        def main(comm):
            solver = CMTSolver(
                comm, PART,
                config=SolverConfig(
                    gs_method="pairwise",
                    viscosity=ViscousModel(mu=1e-3),
                ),
            )
            st = uniform_state(PART.nel_local, MESH.n, vel=(0.3, 0.1, 0.0))
            u0 = st.u.copy()
            st = solver.run(st, nsteps=4, dt=2e-4)
            return float(np.max(np.abs(st.u - u0)))

        assert max(Runtime(nranks=2).run(main)) < 1e-11

    def test_conservation(self):
        def main(comm):
            solver = CMTSolver(
                comm, PART,
                config=SolverConfig(
                    gs_method="pairwise",
                    viscosity=ViscousModel(mu=5e-4),
                ),
            )
            coords = np.stack(
                [MESH.element_nodes(ec)
                 for ec in PART.local_elements(comm.rank)],
                axis=1,
            )
            x = coords[0]
            rho = np.ones_like(x)
            vel = np.zeros((3,) + x.shape)
            vel[1] = 0.05 * np.sin(2 * np.pi * x)
            st = from_primitives(rho, vel, np.ones_like(x))
            before = solver.conserved_totals(st)
            st = solver.run(st, nsteps=15, dt=2e-4)
            after = solver.conserved_totals(st)
            return before, after, st.is_physical()

        before, after, ok = Runtime(nranks=2).run(main)[0]
        assert ok
        for key in before:
            assert after[key] == pytest.approx(before[key], abs=1e-10)

    def test_shear_wave_decays_at_physical_rate(self):
        """u_y = U0 sin(2 pi x) decays like exp(-nu k^2 t)."""
        mu = 2e-3
        u0_amp = 1e-3
        k = 2 * np.pi  # domain length 1

        def main(comm):
            solver = CMTSolver(
                comm, PART,
                config=SolverConfig(
                    gs_method="pairwise",
                    viscosity=ViscousModel(mu=mu),
                ),
            )
            coords = np.stack(
                [MESH.element_nodes(ec)
                 for ec in PART.local_elements(comm.rank)],
                axis=1,
            )
            x = coords[0]
            rho = np.ones_like(x)
            vel = np.zeros((3,) + x.shape)
            vel[1] = u0_amp * np.sin(k * x)
            st = from_primitives(rho, vel, np.ones_like(x))
            dt = 2e-4
            nsteps = 400
            st = solver.run(st, nsteps=nsteps, dt=dt)
            amp_local = float(np.max(np.abs(st.velocity()[1])))
            from repro.mpi import MAX

            amp = comm.allreduce(amp_local, op=MAX)
            return amp, nsteps * dt

        amp, t = Runtime(nranks=2).run(main)[0]
        expect = u0_amp * np.exp(-mu * k * k * t)
        assert amp == pytest.approx(expect, rel=0.05)

    def test_more_viscosity_decays_faster(self):
        def amp_for(mu):
            def main(comm):
                solver = CMTSolver(
                    comm, PART,
                    config=SolverConfig(
                        gs_method="pairwise",
                        viscosity=ViscousModel(mu=mu) if mu else None,
                    ),
                )
                coords = np.stack(
                    [MESH.element_nodes(ec)
                     for ec in PART.local_elements(comm.rank)],
                    axis=1,
                )
                x = coords[0]
                rho = np.ones_like(x)
                vel = np.zeros((3,) + x.shape)
                vel[1] = 1e-3 * np.sin(2 * np.pi * x)
                st = from_primitives(rho, vel, np.ones_like(x))
                st = solver.run(st, nsteps=150, dt=2e-4)
                from repro.mpi import MAX

                return comm.allreduce(
                    float(np.max(np.abs(st.velocity()[1]))), op=MAX
                )

            return Runtime(nranks=2).run(main)[0]

        assert amp_for(5e-3) < amp_for(1e-3) < amp_for(0.0) + 1e-12
