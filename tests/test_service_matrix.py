"""Scenario-matrix campaign runner: DSL expansion, comparative report.

The load-bearing assertions mirror the service tier's: matrix cells
are ordinary jobs, so each cell's digest/vtime must match a standalone
run of the same spec, and the report must map results back onto the
grid without mixing cells up.
"""

from __future__ import annotations

import json

import pytest

from repro.service import (
    MatrixSpec,
    run_job,
    run_matrix,
)
from repro.service.matrix import expand_matrix

BASE = {"n": 4, "nel": 4, "nsteps": 2}


def doc(**kw):
    d = {
        "kind": "cmtbone",
        "base": dict(BASE),
        "axes": {
            "nranks": [2, 4],
            "gs_method": ["pairwise", "crystal"],
        },
        "compare": "gs_method",
    }
    d.update(kw)
    return d


class TestMatrixSpec:
    def test_from_doc_round_trip(self):
        m = MatrixSpec.from_doc(doc())
        assert m.kind == "cmtbone"
        assert m.shape == (2, 2)
        assert m.ncells() == 4
        assert m.compare == "gs_method"

    def test_compare_defaults_to_first_axis(self):
        m = MatrixSpec.from_doc(doc(compare=""))
        assert m.compare == "nranks"

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown matrix keys"):
            MatrixSpec.from_doc(doc(jobs=[]))

    def test_rejects_bad_compare(self):
        with pytest.raises(ValueError, match="compare axis"):
            MatrixSpec.from_doc(doc(compare="nope"))

    def test_rejects_empty_axis(self):
        d = doc()
        d["axes"]["gs_method"] = []
        with pytest.raises(ValueError, match="non-empty"):
            MatrixSpec.from_doc(d)

    def test_rejects_missing_axes(self):
        with pytest.raises(ValueError, match="axes"):
            MatrixSpec.from_doc({"kind": "cmtbone"})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            MatrixSpec.from_doc(doc(kind="nope"))


class TestExpansion:
    def test_cells_cover_the_cross_product(self):
        cells = expand_matrix(MatrixSpec.from_doc(doc()))
        assert len(cells) == 4
        seen = {(c.spec.nranks, c.spec.params["gs_method"])
                for c in cells}
        assert seen == {(2, "pairwise"), (2, "crystal"),
                        (4, "pairwise"), (4, "crystal")}
        # Axis values route to the right place: nranks is JobSpec
        # metadata, gs_method a param; base params are shared.
        for c in cells:
            assert c.spec.params["n"] == BASE["n"]
            assert "nranks" not in c.spec.params

    def test_null_axis_value_unsets_the_param(self):
        d = doc()
        d["axes"]["fault_spec"] = [None, "degrade:factor=2"]
        cells = expand_matrix(MatrixSpec.from_doc(d))
        faulty = [c for c in cells if c.coords["fault_spec"]]
        clean = [c for c in cells if not c.coords["fault_spec"]]
        assert len(faulty) == len(clean) == 4
        assert all("fault_spec" in c.spec.params for c in faulty)
        assert all("fault_spec" not in c.spec.params for c in clean)
        assert all(c.label.endswith("fault_spec=-") for c in clean)

    def test_smaller_cells_get_higher_priority(self):
        cells = expand_matrix(MatrixSpec.from_doc(doc()))
        by_nranks = sorted(cells, key=lambda c: c.spec.nranks)
        small = [c.spec.priority for c in by_nranks[:2]]
        large = [c.spec.priority for c in by_nranks[2:]]
        assert min(small) > max(large)

    def test_timeout_and_retry_policy_applies_to_every_cell(self):
        m = MatrixSpec.from_doc(doc(timeout_seconds=3.5, max_retries=2))
        for c in expand_matrix(m):
            assert c.spec.timeout_seconds == 3.5
            assert c.spec.max_retries == 2

    def test_labels_are_deterministic_and_distinct(self):
        cells = expand_matrix(MatrixSpec.from_doc(doc()))
        labels = [c.label for c in cells]
        assert len(set(labels)) == len(labels)
        assert labels == [c.label for c in
                          expand_matrix(MatrixSpec.from_doc(doc()))]


class TestRunMatrix:
    def test_two_by_two_report_matches_standalone(self):
        m = MatrixSpec.from_doc(doc())
        report = run_matrix(m, nworkers=2)
        assert not report.failed
        assert len(report.results) == 4
        rows = report.rows()
        assert len(rows) == 2  # one row per nranks value
        for _key, cols in rows:
            assert set(cols) == {"pairwise", "crystal"}
        # Each cell is an ordinary job: bitwise-identical to running
        # its spec standalone.
        for cell, res in zip(report.cells, report.results):
            solo = run_job(cell.spec)
            assert res.digest == solo.digest
            assert res.vtime_total == solo.vtime_total
        # The winner of each row is its fastest completed column.
        for key, cols in rows:
            winner = report.winners()[key]
            assert cols[winner].vtime_total == min(
                r.vtime_total for r in cols.values()
            )

    def test_report_renders_text_and_json(self):
        report = run_matrix(MatrixSpec.from_doc(doc()), nworkers=2)
        text = report.summary()
        assert "matrix: cmtbone, 4 cells 2x2" in text
        assert "<- winner" in text
        assert "0 timeouts" in text
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["ncells"] == 4
        assert len(payload["rows"]) == 2
        for row in payload["rows"]:
            assert row["winner"] in row["cells"]
            for cell in row["cells"].values():
                assert cell["status"] == "done"

    def test_failed_cell_excluded_from_winner(self):
        d = doc()
        d["axes"] = {"gs_method": ["pairwise", "crystal"],
                     "work_mode": ["real", "bogus"]}
        d["compare"] = "work_mode"
        report = run_matrix(MatrixSpec.from_doc(d), nworkers=1)
        assert len(report.failed) == 2
        for _key, cols in report.rows():
            assert not cols["bogus"].ok
        assert set(report.winners().values()) == {"real"}
        assert "failed" in report.summary()

    def test_matrix_cells_share_the_artifact_cache(self, tmp_path):
        d = doc()
        d["axes"] = {"gs_method": ["pairwise", "crystal"]}
        art = str(tmp_path / "spill")
        cold = run_matrix(MatrixSpec.from_doc(d), nworkers=1,
                          artifact_dir=art)
        warm = run_matrix(MatrixSpec.from_doc(d), nworkers=1,
                          artifact_dir=art)
        assert not cold.failed and not warm.failed
        assert all(r.cache_disk_hits == 1 for r in warm.results)
        for c, w in zip(cold.results, warm.results):
            assert w.digest == c.digest
            assert w.vtime_total == c.vtime_total


class TestMatrixCLI:
    def test_campaign_matrix_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "grid.json"
        path.write_text(json.dumps(doc()))
        out = tmp_path / "report.json"
        rc = main(["campaign", "--matrix", str(path),
                   "--workers", "2", "--json", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "<- winner" in text
        payload = json.loads(out.read_text())
        assert payload["ncells"] == 4

    def test_campaign_sources_are_exclusive(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "grid.json"
        path.write_text(json.dumps(doc()))
        rc = main(["campaign", "--matrix", str(path), "--count", "2"])
        assert rc == 2
        assert "exactly one" in capsys.readouterr().err

    def test_campaign_matrix_rejects_bad_doc(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"kind": "cmtbone"}))
        rc = main(["campaign", "--matrix", str(path)])
        assert rc == 2
        assert "axes" in capsys.readouterr().err
