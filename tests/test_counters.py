"""The PAPI-style analytic counter model (Figs. 5/6 calibration)."""

import pytest

from repro.kernels import derivatives
from repro.kernels.counters import (
    GENERATED_VARIANT_CLASS,
    ir_counts,
    kernel_cost,
    roofline_seconds,
    speedup,
    working_set_bytes,
)
from repro.perfmodel import MachineModel

#: The paper's operating point for Figs. 5/6.
PAPER_N, PAPER_NEL, PAPER_STEPS = 5, 1563, 1000


class TestCalibration:
    """Modelled counters at the paper's setup match Figs. 5/6."""

    @pytest.mark.parametrize(
        "direction,variant,paper_inst",
        [
            ("t", "fused", 1.159e9),
            ("r", "fused", 2.402e9),
            ("s", "fused", 2.595e9),
            ("t", "basic", 3.220e9),
            ("r", "basic", 2.429e9),
        ],
    )
    def test_instruction_counts(self, direction, variant, paper_inst):
        c = kernel_cost(direction, variant, PAPER_N, PAPER_NEL,
                        steps=PAPER_STEPS)
        assert c.instructions == pytest.approx(paper_inst, rel=0.01)

    @pytest.mark.parametrize(
        "direction,variant,paper_cycles",
        [
            ("t", "fused", 0.762e9),
            ("r", "fused", 1.355e9),
            ("s", "fused", 1.468e9),
            ("t", "basic", 1.695e9),
            ("r", "basic", 1.394e9),
        ],
    )
    def test_cycle_counts(self, direction, variant, paper_cycles):
        c = kernel_cost(direction, variant, PAPER_N, PAPER_NEL,
                        steps=PAPER_STEPS)
        assert c.cycles == pytest.approx(paper_cycles, rel=0.02)

    def test_speedups_match_paper(self):
        """dudt 2.31x, dudr 1.03x, duds ~1.0x (Section V)."""
        s_t = speedup("t", PAPER_N, PAPER_NEL)
        s_r = speedup("r", PAPER_N, PAPER_NEL)
        s_s = speedup("s", PAPER_N, PAPER_NEL)
        assert 2.0 < s_t < 2.5
        assert 0.95 < s_r < 1.12
        assert s_s == pytest.approx(1.0, abs=0.02)
        assert s_t > s_r > s_s - 0.05  # ordering claim


class TestScaling:
    def test_cost_scales_with_n4(self):
        c5 = kernel_cost("t", "fused", 5, 100)
        c10 = kernel_cost("t", "fused", 10, 100)
        assert c10.flops / c5.flops == pytest.approx(16.0)

    def test_cost_scales_linearly_with_nel(self):
        c1 = kernel_cost("t", "fused", 8, 50)
        c2 = kernel_cost("t", "fused", 8, 100)
        assert c2.seconds == pytest.approx(2 * c1.seconds)

    def test_steps_multiply(self):
        c1 = kernel_cost("r", "basic", 6, 10, steps=1)
        c9 = kernel_cost("r", "basic", 6, 10, steps=9)
        assert c9.instructions == pytest.approx(9 * c1.instructions)

    def test_l1_penalty_kicks_in_for_large_n(self):
        """duds pays an extra CPI penalty once the element spills L1."""
        machine = MachineModel.preset("opteron6378")
        # 48 KB L1: working set 8(2N^3+N^2) crosses it near N=13.
        assert working_set_bytes(13) < machine.cpu.l1_dcache
        assert working_set_bytes(15) > machine.cpu.l1_dcache
        small = kernel_cost("s", "fused", 13, 100, machine=machine)
        big = kernel_cost("s", "fused", 15, 100, machine=machine)
        cpi_small = small.cycles / small.instructions
        cpi_big = big.cycles / big.instructions
        assert cpi_big > cpi_small

    def test_dudt_unit_stride_no_l1_penalty(self):
        machine = MachineModel.preset("opteron6378")
        big = kernel_cost("t", "fused", 20, 10, machine=machine)
        small = kernel_cost("t", "fused", 5, 10, machine=machine)
        assert big.cycles / big.instructions == pytest.approx(
            small.cycles / small.instructions
        )


class TestInterface:
    def test_row(self):
        label, secs, inst, cyc = kernel_cost("t", "fused", 5, 10).row()
        assert label == "dudt"
        assert secs > 0 and inst > 0 and cyc > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            kernel_cost("x", "fused", 5, 10)
        with pytest.raises(ValueError):
            kernel_cost("t", "blah", 5, 10)

    def test_einsum_fallback_coefficients(self):
        c = kernel_cost("t", "einsum", 5, 10)
        assert c.instructions > 0 and c.cycles > 0

    def test_roofline_seconds_sums_directions(self):
        m = MachineModel.preset("compton")
        total = roofline_seconds(6, 20, m)
        parts = sum(
            kernel_cost(d, "fused", 6, 20, machine=m).seconds for d in "rst"
        )
        assert total == pytest.approx(parts)


class TestIRPricing:
    """Generated variants are priced from the contraction IR itself."""

    @pytest.mark.parametrize("direction", ["r", "s", "t"])
    @pytest.mark.parametrize("n", range(5, 26))
    def test_ir_counts_match_hand_formulas(self, direction, n):
        """IR-derived flops/bytes == 2N^4 nel / 16N^3 nel for every N."""
        nel = 17
        fl, mb = ir_counts(direction, n, nel)
        assert fl == derivatives.flops(n, nel)
        assert mb == derivatives.mem_bytes(n, nel)

    @pytest.mark.parametrize("direction", ["r", "s", "t"])
    @pytest.mark.parametrize("n", [5, 13, 25])
    @pytest.mark.parametrize(
        "variant", ["basic", "fused", "einsum"]
    )
    def test_hand_variant_counts_equal_ir(self, direction, n, variant):
        """The hand variants and IR pricing agree on the structural
        counts (the microarchitectural coefficients differ by class)."""
        hand = kernel_cost(direction, variant, n, 9)
        fl, mb = ir_counts(direction, n, 9)
        assert hand.flops == fl
        assert hand.mem_bytes == mb

    @pytest.mark.parametrize("variant", sorted(GENERATED_VARIANT_CLASS))
    def test_every_generated_variant_priced(self, variant):
        c = kernel_cost("s", variant, 10, 12)
        assert c.flops == derivatives.flops(10, 12)
        assert c.instructions > 0 and c.cycles > 0 and c.seconds > 0

    def test_generated_prices_as_fused_class(self):
        """'generated'/'auto' deliberately price as the default GEMM
        schedule so virtual metrics stay host-independent."""
        for d in "rst":
            fused = kernel_cost(d, "fused", 8, 20)
            for v in ("generated", "auto", "gemm"):
                gen = kernel_cost(d, v, 8, 20)
                assert gen.seconds == fused.seconds
                assert gen.instructions == fused.instructions

    def test_plane_schedule_prices_as_basic(self):
        basic = kernel_cost("t", "basic", 8, 20)
        plane = kernel_cost("t", "plane", 8, 20)
        assert plane.seconds == basic.seconds

    def test_generated_variants_listed_in_kernels_namespace(self):
        assert set(derivatives.GENERATED_VARIANTS) <= set(
            GENERATED_VARIANT_CLASS
        )
