"""Over-integration (dealiased flux) mode of the DG solver."""

import numpy as np
import pytest

from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import CMTSolver, SolverConfig, from_primitives, uniform_state

MESH = BoxMesh(shape=(4, 1, 1), n=6)
PART = Partition(MESH, proc_shape=(2, 1, 1))


def _run(dealias, nsteps=10, amp=0.05):
    def main(comm):
        solver = CMTSolver(
            comm, PART,
            config=SolverConfig(gs_method="pairwise", dealias=dealias),
        )
        coords = np.stack(
            [MESH.element_nodes(ec) for ec in PART.local_elements(comm.rank)],
            axis=1,
        )
        x = coords[0]
        rho = 1.0 + amp * np.sin(2 * np.pi * x)
        vel = np.zeros((3,) + rho.shape)
        vel[0] = 0.4
        state = from_primitives(rho, vel, np.ones_like(rho))
        before = solver.conserved_totals(state)
        dt = solver.stable_dt(state)
        for _ in range(nsteps):
            state = solver.step(state, dt)
        after = solver.conserved_totals(state)
        return before, after, state.is_physical(), comm.clock.compute_time

    return Runtime(nranks=2).run(main)


class TestDealiasedSolver:
    def test_freestream_preserved(self):
        def main(comm):
            solver = CMTSolver(
                comm, PART,
                config=SolverConfig(gs_method="pairwise", dealias=True),
            )
            st = uniform_state(PART.nel_local, MESH.n, rho=1.1,
                               vel=(0.2, 0.1, -0.3), p=1.5)
            u0 = st.u.copy()
            st = solver.run(st, nsteps=3, dt=1e-3)
            return float(np.max(np.abs(st.u - u0)))

        assert max(Runtime(nranks=2).run(main)) < 1e-11

    def test_conservation_holds(self):
        res = _run(dealias=True)
        before, after, physical, _ = res[0]
        assert physical
        for key in before:
            assert after[key] == pytest.approx(before[key], abs=1e-10), key

    def test_dealiased_close_to_standard_for_smooth_data(self):
        """For well-resolved data the two paths agree closely."""
        res_std = _run(dealias=False, amp=0.01)
        res_dea = _run(dealias=True, amp=0.01)
        b_s, a_s, _, _ = res_std[0]
        b_d, a_d, _, _ = res_dea[0]
        for key in a_s:
            assert a_d[key] == pytest.approx(a_s[key], rel=1e-6, abs=1e-9)

    def test_dealias_charges_more_compute(self):
        """Over-integration costs extra modelled time (fine-grid work)."""
        t_std = _run(dealias=False)[0][3]
        t_dea = _run(dealias=True)[0][3]
        assert t_dea > t_std
