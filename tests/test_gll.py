"""GLL quadrature machinery: points, weights, Legendre, Lagrange."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.gll import (
    MAX_N,
    MIN_N,
    barycentric_weights,
    gll_points,
    gll_weights,
    lagrange_basis_at,
    legendre_and_derivative,
)

NS = [2, 3, 4, 5, 8, 10, 16, 25]


class TestLegendre:
    def test_p0_p1(self):
        x = np.linspace(-1, 1, 7)
        p0, d0 = legendre_and_derivative(0, x)
        np.testing.assert_allclose(p0, 1.0)
        np.testing.assert_allclose(d0, 0.0)
        p1, d1 = legendre_and_derivative(1, x)
        np.testing.assert_allclose(p1, x)
        np.testing.assert_allclose(d1, 1.0)

    def test_p2(self):
        x = np.linspace(-1, 1, 9)
        p2, d2 = legendre_and_derivative(2, x)
        np.testing.assert_allclose(p2, 1.5 * x**2 - 0.5, atol=1e-14)
        np.testing.assert_allclose(d2, 3.0 * x, atol=1e-13)

    @pytest.mark.parametrize("n", [1, 3, 6, 11])
    def test_endpoint_values(self, n):
        p, _ = legendre_and_derivative(n, np.array([1.0, -1.0]))
        assert p[0] == pytest.approx(1.0)
        assert p[1] == pytest.approx((-1.0) ** n)

    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_endpoint_derivative_closed_form(self, n):
        _, dp = legendre_and_derivative(n, np.array([1.0, -1.0]))
        assert dp[0] == pytest.approx(n * (n + 1) / 2)
        assert dp[1] == pytest.approx((-1.0) ** (n + 1) * n * (n + 1) / 2)

    def test_orthogonality_via_quadrature(self):
        """Integrate P_m P_n with a fine GLL rule: delta_mn 2/(2n+1)."""
        n = 20
        x, w = np.asarray(gll_points(n)), np.asarray(gll_weights(n))
        for a in range(5):
            for b in range(5):
                pa, _ = legendre_and_derivative(a, x)
                pb, _ = legendre_and_derivative(b, x)
                val = np.sum(w * pa * pb)
                expect = 2.0 / (2 * a + 1) if a == b else 0.0
                assert val == pytest.approx(expect, abs=1e-12)


class TestGLLPoints:
    @pytest.mark.parametrize("n", NS)
    def test_endpoints_and_order(self, n):
        x = gll_points(n)
        assert x[0] == -1.0 and x[-1] == 1.0
        assert np.all(np.diff(x) > 0)

    @pytest.mark.parametrize("n", NS)
    def test_antisymmetric(self, n):
        x = gll_points(n)
        np.testing.assert_allclose(x, -x[::-1], atol=1e-15)

    @pytest.mark.parametrize("n", NS)
    def test_interior_points_are_extrema_of_legendre(self, n):
        x = gll_points(n)
        _, dp = legendre_and_derivative(n - 1, x[1:-1])
        np.testing.assert_allclose(dp, 0.0, atol=1e-9)

    def test_known_n3(self):
        np.testing.assert_allclose(gll_points(3), [-1.0, 0.0, 1.0])

    def test_known_n4(self):
        np.testing.assert_allclose(
            gll_points(4),
            [-1.0, -np.sqrt(1 / 5), np.sqrt(1 / 5), 1.0],
            atol=1e-14,
        )

    def test_known_n5(self):
        np.testing.assert_allclose(
            gll_points(5),
            [-1.0, -np.sqrt(3 / 7), 0.0, np.sqrt(3 / 7), 1.0],
            atol=1e-14,
        )

    def test_range_validation(self):
        with pytest.raises(ValueError):
            gll_points(MIN_N - 1)
        with pytest.raises(ValueError):
            gll_points(MAX_N + 1)

    def test_cached_and_readonly(self):
        x = gll_points(6)
        assert gll_points(6) is x
        with pytest.raises(ValueError):
            x[0] = 5.0


class TestGLLWeights:
    @pytest.mark.parametrize("n", NS)
    def test_sum_is_interval_length(self, n):
        assert np.sum(gll_weights(n)) == pytest.approx(2.0, abs=1e-13)

    @pytest.mark.parametrize("n", NS)
    def test_positive_and_symmetric(self, n):
        w = gll_weights(n)
        assert np.all(w > 0)
        np.testing.assert_allclose(w, w[::-1], atol=1e-14)

    def test_known_n3(self):
        np.testing.assert_allclose(gll_weights(3), [1 / 3, 4 / 3, 1 / 3])

    @pytest.mark.parametrize("n", [3, 5, 8, 12])
    def test_exact_for_degree_2n_minus_3(self, n):
        x, w = np.asarray(gll_points(n)), np.asarray(gll_weights(n))
        for k in range(2 * n - 2):
            exact = 2.0 / (k + 1) if k % 2 == 0 else 0.0
            assert np.sum(w * x**k) == pytest.approx(exact, abs=1e-11), k


class TestLagrangeBasis:
    @pytest.mark.parametrize("n", [3, 6, 10])
    def test_cardinal_at_nodes(self, n):
        L = lagrange_basis_at(n, np.asarray(gll_points(n)))
        np.testing.assert_allclose(L, np.eye(n), atol=1e-12)

    @pytest.mark.parametrize("n", [3, 6, 10])
    def test_partition_of_unity(self, n):
        xq = np.linspace(-1, 1, 23)
        L = lagrange_basis_at(n, xq)
        np.testing.assert_allclose(L.sum(axis=1), 1.0, atol=1e-12)

    @given(st.floats(-1.0, 1.0))
    @settings(max_examples=30)
    def test_interpolates_polynomials_exactly(self, xq):
        n = 6
        x = np.asarray(gll_points(n))
        coeffs = np.array([1.0, -2.0, 0.5, 3.0, -1.0])  # degree 4 < n
        vals = np.polyval(coeffs, x)
        L = lagrange_basis_at(n, np.array([xq]))
        assert L @ vals == pytest.approx(np.polyval(coeffs, xq), abs=1e-10)

    def test_barycentric_weights_alternate_sign(self):
        b = barycentric_weights(7)
        signs = np.sign(b)
        assert np.all(signs[1:] != signs[:-1])
