"""Unit tests for the per-rank virtual clocks."""

import pytest

from repro.mpi.clock import ClockStats, StopwatchRegion, TimePolicy, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        c = VirtualClock()
        assert c.now == 0.0
        assert c.compute_time == 0.0
        assert c.comm_time == 0.0

    def test_advance_compute(self):
        c = VirtualClock()
        c.advance(1.5)
        assert c.now == 1.5
        assert c.compute_time == 1.5
        assert c.comm_time == 0.0

    def test_advance_comm(self):
        c = VirtualClock()
        c.advance(0.25, kind="comm")
        assert c.now == 0.25
        assert c.comm_time == 0.25
        assert c.compute_time == 0.0

    def test_advance_accumulates(self):
        c = VirtualClock()
        c.advance(1.0)
        c.advance(2.0, kind="comm")
        c.advance(0.5)
        assert c.now == pytest.approx(3.5)
        assert c.compute_time == pytest.approx(1.5)
        assert c.comm_time == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        c = VirtualClock()
        with pytest.raises(ValueError):
            c.advance(-0.1)

    def test_unknown_kind_rejected(self):
        c = VirtualClock()
        with pytest.raises(ValueError):
            c.advance(1.0, kind="io")

    def test_synchronize_forward(self):
        c = VirtualClock()
        c.advance(1.0)
        waited = c.synchronize(3.0)
        assert waited == pytest.approx(2.0)
        assert c.now == pytest.approx(3.0)
        assert c.comm_time == pytest.approx(2.0)

    def test_synchronize_to_past_is_noop(self):
        c = VirtualClock()
        c.advance(5.0)
        waited = c.synchronize(2.0)
        assert waited == 0.0
        assert c.now == 5.0


class TestStopwatchRegion:
    def test_measures_and_charges(self):
        c = VirtualClock()
        with StopwatchRegion(c) as region:
            sum(range(10000))
        assert region.elapsed > 0.0
        assert c.now == pytest.approx(region.elapsed)
        assert c.compute_time == pytest.approx(region.elapsed)

    def test_wall_scale(self):
        c = VirtualClock()
        with StopwatchRegion(c, wall_scale=0.0):
            sum(range(1000))
        assert c.now == 0.0


class TestClockStats:
    def test_comm_fraction(self):
        s = ClockStats(rank=0, total=10.0, compute=7.0, comm=3.0)
        assert s.comm_fraction == pytest.approx(0.3)

    def test_comm_fraction_zero_total(self):
        s = ClockStats(rank=0, total=0.0, compute=0.0, comm=0.0)
        assert s.comm_fraction == 0.0


def test_time_policy_values():
    assert TimePolicy.MODELED.value == "modeled"
    assert TimePolicy.MEASURED.value == "measured"
