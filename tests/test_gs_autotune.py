"""Setup-time auto-tuning of the exchange method (paper Section VI)."""

import numpy as np
import pytest

from repro.gs import choose_method, gs_setup, time_method, timing_table
from repro.mesh import BoxMesh, Partition, dg_face_numbering
from repro.mpi import Runtime


def tune(nranks, gids_fn, **kw):
    def main(comm):
        h = gs_setup(gids_fn(comm.rank), comm)
        timings = choose_method(h, **kw)
        return h.method, timings, h.setup_stats

    return Runtime(nranks=nranks).run(main)


class TestChooseMethod:
    def test_winner_has_min_avg(self):
        mesh = BoxMesh(shape=(4, 2, 2), n=4)
        part = Partition(mesh, proc_shape=(2, 2, 1))
        res = tune(4, lambda r: dg_face_numbering(part, r), trials=2)
        method, timings, stats = res[0]
        best = min(timings.values(), key=lambda t: t.avg)
        assert method == best.method
        assert stats["chosen_method"] == method
        assert set(stats["autotune"]) == {"pairwise", "crystal", "allreduce"}

    def test_all_ranks_agree(self):
        mesh = BoxMesh(shape=(4, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(4, 1, 1))
        res = tune(4, lambda r: dg_face_numbering(part, r), trials=1)
        methods = {r[0] for r in res}
        assert len(methods) == 1

    def test_timing_stats_ordered(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 1, 1))
        res = tune(2, lambda r: dg_face_numbering(part, r), trials=2)
        for t in res[0][1].values():
            assert t.mn <= t.avg <= t.mx
            assert t.avg > 0

    def test_method_subset(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 1, 1))
        res = tune(
            2, lambda r: dg_face_numbering(part, r),
            methods=["pairwise", "crystal"], trials=1,
        )
        assert set(res[0][1]) == {"pairwise", "crystal"}

    def test_unknown_method_rejected(self):
        def main(comm):
            h = gs_setup(np.array([1, 2]), comm)
            choose_method(h, methods=["bogus"])

        with pytest.raises(Exception, match="unknown gs method"):
            Runtime(nranks=1).run(main)

    def test_deterministic_across_runs(self):
        """Virtual time makes autotune results exactly reproducible."""
        mesh = BoxMesh(shape=(4, 2, 2), n=4)
        part = Partition(mesh, proc_shape=(2, 2, 1))
        r1 = tune(4, lambda r: dg_face_numbering(part, r), trials=2)
        r2 = tune(4, lambda r: dg_face_numbering(part, r), trials=2)
        for m in ("pairwise", "crystal", "allreduce"):
            assert r1[0][1][m].avg == r2[0][1][m].avg


class TestTimeMethod:
    def test_single_method(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 1, 1))

        def main(comm):
            h = gs_setup(dg_face_numbering(part, comm.rank), comm)
            return time_method(h, "pairwise", trials=3)

        t = Runtime(nranks=2).run(main)[0]
        assert t.method == "pairwise"
        assert t.label == "pairwise exchange"
        assert "pairwise" in t.row()


class TestTimingTable:
    def test_render(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 1, 1))
        res = tune(2, lambda r: dg_face_numbering(part, r), trials=1)
        text = timing_table(res[0][1], title="Setup")
        assert "Setup" in text
        assert "pairwise exchange" in text
        assert "crystal router" in text
        assert "Time (avg)" in text
