"""Wire framing, hostfile parsing, and agent-launch plumbing.

The framing fuzz matrix is the satellite contract: partial reads
(byte-at-a-time senders), oversize payloads (sized off the ShmRing
spill-threshold constants so the two transports are stressed at the
same scale), interleaved frames from concurrent writer threads, and
truncated streams must all either round-trip exactly or raise a clean
:class:`TransportError` — never deadlock (every receive here is
bounded by a socket timeout).
"""

import os
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro.mpi.shm import DEFAULT_RING_CAPACITY, _SPILL_FRACTION
from repro.net import TransportError
from repro.net.hostfile import (
    HostEntry,
    HostfileError,
    agent_argv,
    is_local_host,
    parse_hostfile,
    rank_layout,
    ssh_command,
    total_slots,
)
from repro.net.wire import (
    AUTH,
    ENVELOPE,
    HEADER_BYTES,
    HEARTBEAT,
    KNOWN_KINDS,
    MAGIC,
    PEER_HELLO,
    FrameSocket,
    connect,
    format_address,
    make_listener,
    parse_address,
)

#: The shm transport's spill threshold: payloads above this take the
#: spill path over rings; over sockets they must simply pass through.
SPILL_THRESHOLD = DEFAULT_RING_CAPACITY // _SPILL_FRACTION


def _pair(max_frame=1 << 30):
    a, b = socket.socketpair()
    return FrameSocket(a, max_frame=max_frame), FrameSocket(
        b, max_frame=max_frame
    )


class TestFraming:
    def test_round_trip(self):
        tx, rx = _pair()
        tx.send_frame(ENVELOPE, b"hello world")
        assert rx.recv_frame(timeout=5.0) == (ENVELOPE, b"hello world")
        tx.close(), rx.close()

    def test_empty_body(self):
        tx, rx = _pair()
        tx.send_frame(HEARTBEAT, b"")
        assert rx.recv_frame(timeout=5.0) == (HEARTBEAT, b"")
        tx.close(), rx.close()

    def test_many_frames_in_order(self):
        tx, rx = _pair()
        bodies = [os.urandom(i * 37 % 1024) for i in range(200)]
        got = []

        def reader():
            for _ in bodies:
                got.append(rx.recv_frame(timeout=30.0))

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        for body in bodies:
            tx.send_frame(ENVELOPE, body)
        t.join(timeout=30.0)
        assert got == [(ENVELOPE, body) for body in bodies]
        tx.close(), rx.close()

    def test_partial_reads_resume_across_timeouts(self):
        """A byte-at-a-time sender costs patience, never correctness."""
        a, b = socket.socketpair()
        rx = FrameSocket(b)
        body = b"slow but sure"
        raw = struct.pack("!2ssI", MAGIC, ENVELOPE, len(body)) + body

        def dribble():
            for i in range(len(raw)):
                a.sendall(raw[i:i + 1])
                time.sleep(0.002)

        t = threading.Thread(target=dribble, daemon=True)
        t.start()
        # Short timeouts force many TimeoutErrors mid-frame; the buffer
        # must survive each one and resume exactly where it left off.
        deadline = time.monotonic() + 10.0
        while True:
            try:
                frame = rx.recv_frame(timeout=0.005)
                break
            except TimeoutError:
                assert time.monotonic() < deadline, "framing lost data"
        assert frame == (ENVELOPE, body)
        t.join()
        a.close(), rx.close()

    def test_spill_sized_payload_passes(self):
        """Payloads above the shm spill threshold are ordinary frames."""
        tx, rx = _pair()
        body = os.urandom(SPILL_THRESHOLD + 1)
        got = []
        t = threading.Thread(
            target=lambda: got.append(rx.recv_frame(timeout=30.0)),
            daemon=True,
        )
        t.start()
        tx.send_frame(ENVELOPE, body)
        t.join(timeout=30.0)
        assert got and got[0] == (ENVELOPE, body)
        tx.close(), rx.close()

    def test_oversize_send_refused(self):
        tx, _rx = _pair(max_frame=1024)
        with pytest.raises(TransportError, match="refusing to send"):
            tx.send_frame(ENVELOPE, b"x" * 2048)

    def test_oversize_declared_length_rejected_before_body(self):
        """A hostile header cannot make the receiver buffer the body:
        the declared length is validated from the header alone."""
        a, b = socket.socketpair()
        rx = FrameSocket(b, max_frame=1024)
        a.sendall(struct.pack("!2ssI", MAGIC, ENVELOPE, 1 << 29))
        with pytest.raises(TransportError, match="exceeds"):
            rx.recv_frame(timeout=5.0)
        a.close(), rx.close()

    def test_bad_magic_rejected(self):
        a, b = socket.socketpair()
        rx = FrameSocket(b)
        a.sendall(b"XX" + b"E" + struct.pack("!I", 3) + b"abc")
        with pytest.raises(TransportError, match="magic"):
            rx.recv_frame(timeout=5.0)
        a.close(), rx.close()

    def test_unknown_kind_rejected(self):
        a, b = socket.socketpair()
        rx = FrameSocket(b)
        assert b"z" not in KNOWN_KINDS
        a.sendall(struct.pack("!2ssI", MAGIC, b"z", 0))
        with pytest.raises(TransportError, match="unknown frame kind"):
            rx.recv_frame(timeout=5.0)
        a.close(), rx.close()

    def test_truncated_mid_frame_is_clean_error(self):
        a, b = socket.socketpair()
        rx = FrameSocket(b)
        a.sendall(struct.pack("!2ssI", MAGIC, ENVELOPE, 100) + b"only")
        a.close()
        with pytest.raises(TransportError, match="truncated mid-frame"):
            rx.recv_frame(timeout=5.0)
        rx.close()

    def test_truncated_mid_header_is_clean_error(self):
        a, b = socket.socketpair()
        rx = FrameSocket(b)
        a.sendall(b"R")  # half the magic, then EOF
        a.close()
        with pytest.raises(TransportError, match="truncated mid-frame"):
            rx.recv_frame(timeout=5.0)
        rx.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        rx = FrameSocket(b)
        a.sendall(struct.pack("!2ssI", MAGIC, HEARTBEAT, 0))
        a.close()
        assert rx.recv_frame(timeout=5.0) == (HEARTBEAT, b"")
        assert rx.recv_frame(timeout=5.0) is None
        rx.close()

    def test_concurrent_writers_never_interleave(self):
        """The send lock makes frames atomic: two writer threads
        hammering one socket must produce only intact frames."""
        tx, rx = _pair()
        per_writer = 100

        def writer(tag):
            for i in range(per_writer):
                body = bytes([tag]) * (1 + (i * 131) % 4096)
                tx.send_frame(ENVELOPE, body)

        threads = [
            threading.Thread(target=writer, args=(t,), daemon=True)
            for t in (1, 2)
        ]
        for t in threads:
            t.start()
        seen = {1: 0, 2: 0}
        for _ in range(2 * per_writer):
            kind, body = rx.recv_frame(timeout=30.0)
            assert kind == ENVELOPE
            assert len(set(body)) == 1, "interleaved frame bodies"
            seen[body[0]] += 1
        assert seen == {1: per_writer, 2: per_writer}
        for t in threads:
            t.join()
        tx.close(), rx.close()

    def test_drain_collects_buffered_frames(self):
        tx, rx = _pair()
        for i in range(5):
            tx.send_frame(ENVELOPE, bytes([i]))
        time.sleep(0.05)
        frames, eof = rx.drain()
        assert [b for _k, b in frames] == [bytes([i]) for i in range(5)]
        assert not eof
        tx.close()
        time.sleep(0.05)
        frames, eof = rx.drain()
        assert frames == [] and eof
        rx.close()

    def test_header_size_is_seven_bytes(self):
        assert HEADER_BYTES == 7


class TestAddresses:
    def test_tcp_round_trip(self):
        addr = ("tcp", "10.1.2.3", 4567)
        assert parse_address(format_address(addr)) == addr

    def test_unix_round_trip(self):
        addr = ("unix", "/tmp/x/y.sock")
        assert parse_address(format_address(addr)) == addr

    @pytest.mark.parametrize("bad", ["tcp:nohost", "unix:", "ftp:x:1",
                                     "tcp::", "tcp:h:notaport"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(TransportError):
            parse_address(bad)


class TestHostfile:
    def test_parse_slots_and_comments(self):
        entries = parse_hostfile(
            "# cluster\n"
            "node0 slots=4\n"
            "\n"
            "node1 slots=2  # the small one\n"
            "node2\n"
        )
        assert entries == [
            HostEntry("node0", 4), HostEntry("node1", 2),
            HostEntry("node2", 1),
        ]
        assert total_slots(entries) == 7

    def test_parse_errors_carry_line_numbers(self):
        with pytest.raises(HostfileError, match="hf:2.*unknown option"):
            parse_hostfile("a\nb frobnicate=1\n", name="hf")
        with pytest.raises(HostfileError, match="hf:1.*integer"):
            parse_hostfile("a slots=many\n", name="hf")
        with pytest.raises(HostfileError, match="hf:1.*>= 1"):
            parse_hostfile("a slots=0\n", name="hf")
        with pytest.raises(HostfileError, match="no hosts"):
            parse_hostfile("# nothing here\n", name="hf")

    def test_rank_layout_fills_in_file_order(self):
        entries = [HostEntry("a", 2), HostEntry("b", 1)]
        assert rank_layout(entries, 3) == ["a", "a", "b"]

    def test_rank_layout_wraps_on_oversubscription(self):
        entries = [HostEntry("a", 1), HostEntry("b", 1)]
        assert rank_layout(entries, 5) == ["a", "b", "a", "b", "a"]

    def test_is_local_host(self):
        assert is_local_host("localhost")
        assert is_local_host("127.0.0.1")
        assert is_local_host(socket.gethostname())
        assert not is_local_host("surely-not-this-machine")

    def test_ssh_command_quotes_remote(self):
        cmd = ssh_command(
            "node7", ("tcp", "10.0.0.1", 9999), "tok", 3,
            python="python3.11",
        )
        assert cmd[:3] == ["ssh", "-o", "BatchMode=yes"]
        assert cmd[3] == "node7"
        remote = cmd[4]
        assert "python3.11 -m repro.net" in remote
        assert "--connect tcp:10.0.0.1:9999" in remote
        assert "--rank 3" in remote

    def test_ssh_command_binds_all_and_advertises_label(self):
        """A remote agent must not listen on loopback: its peer
        listener binds every interface and advertises the hostfile
        label — the one name already known to route to that machine."""
        remote = ssh_command("node7", ("tcp", "10.0.0.1", 9999),
                             "tok", 3)[4]
        assert "--bind-host 0.0.0.0" in remote
        assert "--advertise-host node7" in remote

    def test_agent_argv_round_trips_address(self):
        argv = agent_argv(("tcp", "127.0.0.1", 1234), "tok", 0)
        addr = parse_address(argv[argv.index("--connect") + 1])
        assert addr == ("tcp", "127.0.0.1", 1234)

    def test_agent_argv_bind_advertise_flags(self):
        argv = agent_argv(("tcp", "127.0.0.1", 1234), "tok", 0,
                          bind_host="0.0.0.0", advertise_host="me")
        assert argv[argv.index("--bind-host") + 1] == "0.0.0.0"
        assert argv[argv.index("--advertise-host") + 1] == "me"
        plain = agent_argv(("tcp", "127.0.0.1", 1234), "tok", 0)
        assert "--bind-host" not in plain
        assert "--advertise-host" not in plain


class TestListenerAddressing:
    """Bind vs advertise: remote peers must never be told loopback."""

    def test_default_listener_is_loopback(self):
        sock, addr = make_listener("tcp")
        assert addr == ("tcp", "127.0.0.1", addr[2])
        sock.close()

    def test_wildcard_bind_advertises_hostname(self):
        sock, addr = make_listener("tcp", bind_host="0.0.0.0")
        assert addr[1] == socket.gethostname()
        assert addr[1] != "0.0.0.0"
        sock.close()

    def test_explicit_advertise_wins(self):
        sock, addr = make_listener("tcp", bind_host="0.0.0.0",
                                   advertise_host="node9.cluster")
        assert addr[1] == "node9.cluster"
        sock.close()

    @pytest.mark.skipif(
        socket.gethostname() in ("localhost", "127.0.0.1"),
        reason="machine hostname is itself a loopback name",
    )
    def test_remote_layout_never_advertises_loopback(self):
        """The cross-machine case: with a genuinely remote host in the
        layout, the rendezvous address handed to ssh agents must be
        routable — a remote agent dialing 127.0.0.1 reaches itself."""
        from repro.net import SocketBackend

        backend = SocketBackend(hosts=["localhost", "far-away-node"])
        modes = backend._rank_modes(2)
        assert ("ssh", "far-away-node") in modes
        bind, adv = backend._listen_policy(modes)
        assert bind == "0.0.0.0"
        sock, addr = make_listener("tcp", bind_host=bind,
                                   advertise_host=adv)
        assert addr[1] not in ("127.0.0.1", "0.0.0.0", "localhost",
                               "::1", "")
        sock.close()

    def test_local_layout_stays_loopback(self):
        from repro.net import SocketBackend

        backend = SocketBackend()
        bind, adv = backend._listen_policy(backend._rank_modes(2))
        assert (bind, adv) == ("127.0.0.1", None)

    def test_explicit_policy_overrides(self):
        from repro.net import SocketBackend

        backend = SocketBackend(
            hosts=["remote1", "remote2"],
            bind_host="10.0.0.5", advertise_host="driver.example",
        )
        bind, adv = backend._listen_policy(backend._rank_modes(2))
        assert (bind, adv) == ("10.0.0.5", "driver.example")


_MESH_CANARY_HITS = []


def _trip_mesh_canary():
    _MESH_CANARY_HITS.append(1)


class _EvilMeshPayload:
    """Unpickling this records the fact — it must never happen."""

    def __reduce__(self):
        return (_trip_mesh_canary, ())


def _probe_until_closed(fs):
    """Read until the far side drops the connection (EOF or RST)."""
    try:
        return fs.recv_frame(timeout=10.0)
    except TransportError:
        return None
    finally:
        fs.close()


class TestMeshAuth:
    """Peer mesh connections authenticate before anything unpickles."""

    def test_stray_connection_dropped_and_never_unpickled(self):
        import pickle

        from repro.net.agent import _build_mesh

        token = "sekrit-token"
        listener, addr = make_listener("tcp", name="peer0")
        out = {}

        def build():  # rank 0 of 2: accepts exactly one peer (rank 1)
            out["socks"] = _build_mesh(0, 2, listener, {}, token,
                                       1 << 20)

        t = threading.Thread(target=build, daemon=True)
        t.start()
        # A stray client skips AUTH and sends a malicious PEER_HELLO:
        # it must be dropped without its body ever reaching pickle.
        stray = connect(addr)
        stray.send_frame(PEER_HELLO, pickle.dumps(_EvilMeshPayload()))
        assert _probe_until_closed(stray) is None
        # A second stray presents the wrong token.
        stray = connect(addr)
        stray.send_frame(AUTH, b"wrong-token")
        stray.send_frame(PEER_HELLO, pickle.dumps(_EvilMeshPayload()))
        assert _probe_until_closed(stray) is None
        # The real rank-1 peer still gets through.
        real = connect(addr)
        real.send_frame(AUTH, token.encode("ascii"))
        real.send_frame(PEER_HELLO, pickle.dumps({"rank": 1}))
        t.join(timeout=15.0)
        assert not t.is_alive(), "mesh build wedged by stray clients"
        assert set(out["socks"]) == {1}
        assert _MESH_CANARY_HITS == []
        for fs in out["socks"].values():
            fs.close()
        real.close()
        listener.close()


def _ext_ring(comm, base):
    """Module-level (hence picklable) main for external agents."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(base + comm.rank, dest=right, tag=0)
    return comm.recv(source=left, tag=0)


class TestExternalAgents:
    """The ssh-style path, exercised with local subprocesses."""

    def test_external_agents_run_the_job(self):
        from repro.mpi import Runtime
        from repro.net import SocketBackend

        backend = SocketBackend(external=True)
        res = Runtime(nranks=3, backend=backend).run(_ext_ring, (100,))
        assert res == [102, 100, 101]

    def test_unpicklable_job_refused_up_front(self):
        from repro.mpi import MPIError, Runtime
        from repro.net import SocketBackend

        sock = socket.socket()  # unpicklable closure capture
        try:
            backend = SocketBackend(external=True)
            with pytest.raises(MPIError, match="picklable job"):
                Runtime(nranks=2, backend=backend).run(
                    lambda comm: sock.fileno()
                )
        finally:
            sock.close()

    def test_agent_cli_rejects_bad_address(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.net", "--connect",
             "bogus:xyz", "--token", "t", "--rank", "0"],
            capture_output=True, text=True, timeout=60,
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        assert proc.returncode != 0


class TestHostFingerprint:
    def test_env_override(self, monkeypatch):
        from repro.autotune import host_fingerprint

        monkeypatch.setenv("REPRO_HOST_ID", "fake-node-17")
        assert host_fingerprint().startswith("fake-node-17/")

    def test_contains_hostname_by_default(self, monkeypatch):
        import platform

        from repro.autotune import host_fingerprint

        monkeypatch.delenv("REPRO_HOST_ID", raising=False)
        host = platform.node() or socket.gethostname()
        assert host_fingerprint().split("/")[0] == host
