"""gs_setup discovery and the GSHandle local plans."""

import numpy as np
import pytest

from repro.mpi import SUM, MAX, Runtime
from repro.gs import gs_setup


def setup_on(nranks, gids_fn):
    """Run gs_setup on every rank; return handle summaries."""

    def main(comm):
        h = gs_setup(gids_fn(comm.rank), comm)
        return {
            "uids": h.uids.copy(),
            "neighbors": h.neighbors,
            "shared": h.uids[h.shared_index].tolist(),
            "send": {q: h.uids[ix].tolist()
                     for q, ix in h.neighbor_send_index.items()},
            "owners": h.owners,
            "max_gid": h.max_gid,
            "stats": h.setup_stats,
        }

    return Runtime(nranks=nranks).run(main)


class TestDiscovery:
    def test_two_rank_overlap(self):
        # Rank 0 holds {0,1,2,3}, rank 1 holds {2,3,4,5}.
        gids = {0: np.array([0, 1, 2, 3]), 1: np.array([2, 3, 4, 5])}
        res = setup_on(2, lambda r: gids[r])
        assert res[0]["neighbors"] == [1]
        assert res[0]["shared"] == [2, 3]
        assert res[0]["send"] == {1: [2, 3]}
        assert res[1]["send"] == {0: [2, 3]}
        assert res[0]["max_gid"] == 5

    def test_three_way_sharing(self):
        # Id 7 lives on all three ranks.
        gids = {
            0: np.array([7, 1]),
            1: np.array([7, 2]),
            2: np.array([7, 3]),
        }
        res = setup_on(3, lambda r: gids[r])
        for r in range(3):
            assert res[r]["shared"] == [7]
            others = sorted(set(range(3)) - {r})
            assert res[r]["neighbors"] == others
            assert res[r]["owners"] == [others]

    def test_no_sharing(self):
        res = setup_on(2, lambda r: np.array([r * 10, r * 10 + 1]))
        assert res[0]["neighbors"] == []
        assert res[0]["shared"] == []
        assert res[0]["stats"]["n_shared"] == 0

    def test_symmetry_of_send_lists(self):
        rng_gids = {
            0: np.array([0, 1, 5, 9, 12]),
            1: np.array([1, 2, 5, 13]),
            2: np.array([5, 9, 2, 40]),
        }
        res = setup_on(3, lambda r: rng_gids[r])
        for a in range(3):
            for b in range(3):
                if a == b:
                    continue
                la = res[a]["send"].get(b, [])
                lb = res[b]["send"].get(a, [])
                assert la == lb  # identical order both sides

    def test_duplicate_local_ids_single_uid(self):
        gids = {0: np.array([4, 4, 4, 1]), 1: np.array([4])}
        res = setup_on(2, lambda r: gids[r])
        assert res[0]["uids"].tolist() == [1, 4]
        assert res[0]["send"] == {1: [4]}

    def test_validation(self):
        def main(comm):
            gs_setup(np.array([1.5, 2.5]), comm)

        with pytest.raises(Exception, match="integer"):
            Runtime(nranks=1).run(main)

        def main2(comm):
            gs_setup(np.array([-1, 2]), comm)

        with pytest.raises(Exception, match="non-negative"):
            Runtime(nranks=1).run(main2)


class TestLocalPlans:
    def test_condense_and_scatter_roundtrip(self):
        def main(comm):
            gids = np.array([[3, 3], [5, 7]])
            h = gs_setup(gids, comm)
            x = np.array([[1.0, 2.0], [4.0, 8.0]])
            cond = h.condense(x, SUM)
            out = h.scatter(cond)
            return cond.tolist(), out.tolist()

        cond, out = Runtime(nranks=1).run(main)[0]
        assert cond == [3.0, 4.0, 8.0]  # uids sorted: 3, 5, 7
        assert out == [[3.0, 3.0], [4.0, 8.0]]

    def test_condense_max(self):
        def main(comm):
            h = gs_setup(np.array([1, 1, 2]), comm)
            return h.condense(np.array([5.0, 9.0, 2.0]), MAX).tolist()

        assert Runtime(nranks=1).run(main)[0] == [9.0, 2.0]

    def test_condense_shape_checked(self):
        def main(comm):
            h = gs_setup(np.array([1, 2]), comm)
            h.condense(np.zeros(3), SUM)

        with pytest.raises(Exception, match="shape"):
            Runtime(nranks=1).run(main)

    def test_wire_bytes_pairwise(self):
        gids = {0: np.array([0, 1, 2]), 1: np.array([2, 3])}

        def main(comm):
            h = gs_setup(gids[comm.rank], comm)
            return h.wire_bytes_pairwise()

        res = Runtime(nranks=2).run(main)
        assert res == [8, 8]  # one shared id each direction

    def test_shared_gids_with(self):
        gids = {0: np.array([9, 4, 2]), 1: np.array([4, 9, 77])}

        def main(comm):
            h = gs_setup(gids[comm.rank], comm)
            return h.shared_gids_with(1 - comm.rank).tolist()

        assert Runtime(nranks=2).run(main) == [[4, 9], [4, 9]]
