"""Physical boundary conditions: walls, outflow, Dirichlet."""

import numpy as np
import pytest

from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import (
    CMTSolver,
    RHO,
    SolverConfig,
    from_primitives,
    uniform_state,
)
from repro.solver.boundary import (
    BoundarySpec,
    BoundaryHandler,
    outflow_everywhere,
    walls_everywhere,
)

# x-walled channel, periodic in y/z.
MESH = BoxMesh(shape=(4, 2, 2), n=6, periodic=(False, True, True))
PART = Partition(MESH, proc_shape=(2, 1, 1))
XBC = {0: BoundarySpec("wall"), 1: BoundarySpec("wall")}


class TestBoundarySpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown boundary"):
            BoundarySpec("teleport")
        with pytest.raises(ValueError, match="5-component"):
            BoundarySpec("dirichlet")
        with pytest.raises(ValueError, match="no state"):
            BoundarySpec("wall", state=(1, 0, 0, 0, 1))

    def test_tables(self):
        assert set(walls_everywhere()) == set(range(6))
        assert all(s.kind == "outflow"
                   for s in outflow_everywhere().values())


class TestBoundaryHandler:
    def test_mask_marks_x_extremes_only(self):
        def main(comm):
            h = BoundaryHandler(PART, comm.rank, XBC)
            return h.mask.copy()

        masks = Runtime(nranks=2).run(main)
        # Rank 0 owns x in [0, 2): its x- faces (face 0) of ix=0
        # elements are boundary; rank 1 owns the x+ side.
        assert masks[0][:, 0].sum() == 4   # 2x2 elements at ix=0
        assert masks[0][:, 1].sum() == 0
        assert masks[1][:, 1].sum() == 4
        # y/z faces periodic: never boundary.
        for m in masks:
            assert m[:, 2:].sum() == 0

    def test_missing_bc_rejected(self):
        def main(comm):
            BoundaryHandler(PART, comm.rank, {0: BoundarySpec("wall")})

        with pytest.raises(Exception, match="no boundary condition"):
            Runtime(nranks=2).run(main)

    def test_requires_config(self):
        def main(comm):
            CMTSolver(comm, PART)  # no boundaries given

        with pytest.raises(Exception, match="non-periodic"):
            Runtime(nranks=2).run(main)


class TestWalledBox:
    def _solver(self, comm):
        return CMTSolver(
            comm, PART,
            config=SolverConfig(gs_method="pairwise", boundaries=XBC),
        )

    def test_static_state_is_steady(self):
        """No flow + walls: exact steady state."""

        def main(comm):
            solver = self._solver(comm)
            st = uniform_state(PART.nel_local, MESH.n, rho=1.0,
                               vel=(0.0, 0.0, 0.0), p=1.0)
            u0 = st.u.copy()
            st = solver.run(st, nsteps=5, dt=5e-4)
            return float(np.max(np.abs(st.u - u0)))

        assert max(Runtime(nranks=2).run(main)) < 1e-12

    def test_bouncing_wave_conserves_mass_and_energy(self):
        """A pressure pulse reflecting off walls keeps mass/energy."""

        def main(comm):
            solver = self._solver(comm)
            coords = np.stack(
                [MESH.element_nodes(ec)
                 for ec in PART.local_elements(comm.rank)],
                axis=1,
            )
            x = coords[0]
            bump = 1e-2 * np.exp(-40 * (x - 0.5) ** 2)
            st = from_primitives(
                1.0 + bump, np.zeros((3,) + x.shape), 1.0 + 1.4 * bump
            )
            before = solver.conserved_totals(st)
            dt = solver.stable_dt(st)
            st = solver.run(st, nsteps=60, dt=dt)
            after = solver.conserved_totals(st)
            return before, after, st.is_physical()

        before, after, ok = Runtime(nranks=2).run(main)[0]
        assert ok
        assert after["rho"] == pytest.approx(before["rho"], abs=1e-10)
        assert after["E"] == pytest.approx(before["E"], abs=1e-10)
        # y/z momenta stay zero; x momentum moves (wall forces).
        assert abs(after["rho_v"]) < 1e-10
        assert abs(after["rho_w"]) < 1e-10

    def test_wall_reflects_incoming_flow(self):
        """Uniform inflow against a wall builds pressure, not leakage."""

        def main(comm):
            solver = self._solver(comm)
            st = uniform_state(PART.nel_local, MESH.n, rho=1.0,
                               vel=(0.05, 0.0, 0.0), p=1.0)
            mass0 = solver.integrate(st.u[RHO])
            dt = solver.stable_dt(st)
            st = solver.run(st, nsteps=30, dt=dt)
            mass1 = solver.integrate(st.u[RHO])
            return mass0, mass1, st.is_physical()

        m0, m1, ok = Runtime(nranks=2).run(main)[0]
        assert ok
        assert m1 == pytest.approx(m0, abs=1e-10)  # walls are sealed


class TestOutflow:
    def test_uniform_throughflow_is_steady(self):
        """Uniform flow through open ends: exact steady state."""
        bc = {0: BoundarySpec("outflow"), 1: BoundarySpec("outflow")}

        def main(comm):
            solver = CMTSolver(
                comm, PART,
                config=SolverConfig(gs_method="pairwise", boundaries=bc),
            )
            st = uniform_state(PART.nel_local, MESH.n, rho=1.0,
                               vel=(0.05, 0.0, 0.0), p=1.0)
            u0 = st.u.copy()
            st = solver.run(st, nsteps=5, dt=5e-4)
            return float(np.max(np.abs(st.u - u0)))

        assert max(Runtime(nranks=2).run(main)) < 1e-12

    def test_pulse_starts_leaving_through_open_ends(self):
        """Early transient: mass decreases once waves reach the ends.

        (Zero-gradient outflow is only well-posed for supersonic exit;
        long subsonic runs drift — the documented suck-out — so this
        test checks the short transient and the Dirichlet far-field
        test below covers long-time absorption.)
        """
        bc = {0: BoundarySpec("outflow"), 1: BoundarySpec("outflow")}

        def main(comm):
            solver = CMTSolver(
                comm, PART,
                config=SolverConfig(gs_method="pairwise", boundaries=bc),
            )
            coords = np.stack(
                [MESH.element_nodes(ec)
                 for ec in PART.local_elements(comm.rank)],
                axis=1,
            )
            x = coords[0]
            bump = 5e-2 * np.exp(-40 * (x - 0.5) ** 2)
            st = from_primitives(
                1.0 + bump, np.zeros((3,) + x.shape), 1.0 + 1.4 * bump
            )
            mass0 = solver.integrate(st.u[RHO])
            dt = solver.stable_dt(st)
            st = solver.run(st, nsteps=150, dt=dt)
            mass1 = solver.integrate(st.u[RHO])
            return mass0, mass1, st.is_physical()

        m0, m1, ok = Runtime(nranks=2).run(main)[0]
        assert ok
        assert m1 < m0  # mass is leaving


class TestFarfieldAbsorption:
    def test_pulse_absorbed_by_dirichlet_farfield(self):
        """An ambient-state far field absorbs the pulse almost fully."""
        e_amb = 1.0 / 0.4
        bc = {
            0: BoundarySpec("dirichlet", state=(1.0, 0, 0, 0, e_amb)),
            1: BoundarySpec("dirichlet", state=(1.0, 0, 0, 0, e_amb)),
        }

        def main(comm):
            solver = CMTSolver(
                comm, PART,
                config=SolverConfig(gs_method="pairwise", boundaries=bc),
            )
            coords = np.stack(
                [MESH.element_nodes(ec)
                 for ec in PART.local_elements(comm.rank)],
                axis=1,
            )
            x = coords[0]
            bump = 5e-2 * np.exp(-40 * (x - 0.5) ** 2)
            st = from_primitives(
                1.0 + bump, np.zeros((3,) + x.shape), 1.0 + 1.4 * bump
            )
            excess0 = solver.integrate(st.u[RHO]) - 1.0
            dt = solver.stable_dt(st)
            st = solver.run(st, nsteps=400, dt=dt)
            excess1 = solver.integrate(st.u[RHO]) - 1.0
            vmax = float(np.max(np.abs(st.velocity())))
            return excess0, excess1, vmax, st.is_physical()

        e0, e1, vmax, ok = Runtime(nranks=2).run(main)[0]
        assert ok
        assert e0 > 0.01
        assert abs(e1) < 0.05 * e0   # pulse has left the box
        assert vmax < 1e-2           # and the box is quiescent again


class TestDirichlet:
    def test_matching_farfield_is_steady(self):
        """Dirichlet ghost equal to the interior state changes nothing."""
        from repro.solver import IdealGas

        eos = IdealGas()
        rho, velx, p = 1.0, 0.1, 1.0
        e = p / (eos.gamma - 1.0) + 0.5 * rho * velx**2
        bc = {
            0: BoundarySpec("dirichlet", state=(rho, rho * velx, 0, 0, e)),
            1: BoundarySpec("dirichlet", state=(rho, rho * velx, 0, 0, e)),
        }

        def main(comm):
            solver = CMTSolver(
                comm, PART,
                config=SolverConfig(gs_method="pairwise", boundaries=bc),
            )
            st = uniform_state(PART.nel_local, MESH.n, rho=rho,
                               vel=(velx, 0.0, 0.0), p=p)
            u0 = st.u.copy()
            st = solver.run(st, nsteps=5, dt=5e-4)
            return float(np.max(np.abs(st.u - u0)))

        assert max(Runtime(nranks=2).run(main)) < 1e-11
