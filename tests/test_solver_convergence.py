"""Accuracy of the DG Euler solver: the entropy-wave exact solution.

A density perturbation advected by a uniform flow with constant
pressure is an exact solution of the Euler equations:

    rho(x, t) = 1 + A sin(2 pi (x - u0 t)),  u = u0,  p = const.

The spectral-element discretization must track it with error that
falls rapidly as the polynomial order grows — the high-order accuracy
claim the Nek family is built on.
"""

import numpy as np

from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import CMTSolver, RHO, SolverConfig, from_primitives

AMP = 0.02
U0 = 0.5


def entropy_wave_error(n, nsteps=40, nelx=4):
    mesh = BoxMesh(shape=(nelx, 1, 1), n=n, lengths=(1.0, 1.0, 1.0))
    part = Partition(mesh, proc_shape=(2, 1, 1))

    def main(comm):
        solver = CMTSolver(
            comm, part,
            config=SolverConfig(gs_method="pairwise", cfl=0.25),
        )
        coords = np.stack(
            [mesh.element_nodes(ec) for ec in part.local_elements(comm.rank)],
            axis=1,
        )
        x = coords[0]
        rho0 = 1.0 + AMP * np.sin(2 * np.pi * x)
        vel = np.zeros((3,) + rho0.shape)
        vel[0] = U0
        p = np.ones_like(rho0)
        state = from_primitives(rho0, vel, p)
        dt = solver.stable_dt(state)
        for _ in range(nsteps):
            state = solver.step(state, dt)
        t = nsteps * dt
        exact = 1.0 + AMP * np.sin(2 * np.pi * (x - U0 * t))
        err = float(np.max(np.abs(state.u[RHO] - exact)))
        from repro.mpi import MAX

        return comm.allreduce(err, op=MAX)

    return Runtime(nranks=2).run(main)[0]


class TestEntropyWave:
    def test_error_small_at_moderate_order(self):
        err = entropy_wave_error(n=8)
        assert err < 5e-5

    def test_error_decays_with_order(self):
        e_low = entropy_wave_error(n=4)
        e_mid = entropy_wave_error(n=6)
        e_high = entropy_wave_error(n=8)
        assert e_mid < e_low
        assert e_high < e_mid
        # Spectral-ish: two extra points per direction buy >5x.
        assert e_high < e_low / 25.0

    def test_velocity_and_pressure_stay_uniform(self):
        """In the entropy wave, u and p are invariants of the motion."""
        mesh = BoxMesh(shape=(4, 1, 1), n=6)
        part = Partition(mesh, proc_shape=(1, 1, 1))

        def main(comm):
            solver = CMTSolver(
                comm, part, config=SolverConfig(gs_method="pairwise")
            )
            coords = np.stack(
                [mesh.element_nodes(ec)
                 for ec in part.local_elements(comm.rank)],
                axis=1,
            )
            x = coords[0]
            rho0 = 1.0 + AMP * np.sin(2 * np.pi * x)
            vel = np.zeros((3,) + rho0.shape)
            vel[0] = U0
            state = from_primitives(rho0, vel, np.ones_like(rho0))
            dt = solver.stable_dt(state)
            for _ in range(20):
                state = solver.step(state, dt)
            vmax = float(np.max(np.abs(state.velocity()[0] - U0)))
            pmax = float(np.max(np.abs(state.pressure() - 1.0)))
            return vmax, pmax

        vmax, pmax = Runtime(nranks=1).run(main)[0]
        assert vmax < 5e-4
        assert pmax < 5e-4
