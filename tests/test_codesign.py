"""Design-space exploration over candidate architectures."""

import pytest

from repro.codesign import (
    Candidate,
    Explorer,
    bottleneck,
    candidate_grid,
    notional_exascale_candidates,
    pareto_front,
    rank_by_speed,
    scale_machine,
    speedup_table,
)
from repro.core import CMTBoneConfig
from repro.perfmodel import MachineModel, TorusTopology

CONFIG = CMTBoneConfig(
    n=8,
    local_shape=(2, 2, 2),
    proc_shape=(2, 2, 2),
    nsteps=3,
    work_mode="proxy",
    gs_method="pairwise",
)


@pytest.fixture(scope="module")
def explorer():
    return Explorer(config=CONFIG, nranks=8)


class TestScaleMachine:
    def test_cpu_scaling(self):
        base = MachineModel.preset("compton")
        fast = scale_machine(base, cpu_speed=2.0)
        assert fast.cpu.ghz == pytest.approx(2 * base.cpu.ghz)
        assert fast.network.latency == base.network.latency

    def test_network_scaling(self):
        base = MachineModel.preset("compton")
        slow = scale_machine(base, net_latency=3.0, net_bandwidth=0.5)
        assert slow.network.latency == pytest.approx(3 * base.network.latency)
        assert slow.network.o_send == pytest.approx(3 * base.network.o_send)
        assert slow.network.bandwidth == pytest.approx(
            base.network.bandwidth / 2
        )

    def test_topology_swap(self):
        base = MachineModel.preset("compton")
        torus = scale_machine(base, topology=TorusTopology(shape=(2, 2, 2)))
        assert isinstance(torus.network.topology, TorusTopology)

    def test_validation(self):
        base = MachineModel.preset("compton")
        with pytest.raises(ValueError):
            scale_machine(base, cpu_speed=0.0)


class TestCandidates:
    def test_grid_size_and_names_unique(self):
        grid = candidate_grid()
        assert len(grid) == 16
        assert len({c.name for c in grid}) == 16

    def test_costs_monotone_in_cpu_speed(self):
        grid = candidate_grid(
            cpu_speeds=(1.0, 4.0),
            mem_bandwidths=(1.0,),
            net_latencies=(1.0,),
            net_bandwidths=(1.0,),
        )
        slow, fast = sorted(grid, key=lambda c: c.knobs["cpu_speed"])
        assert fast.cost > slow.cost

    def test_notional_candidates(self):
        cands = notional_exascale_candidates()
        names = {c.name for c in cands}
        assert "fat-cores" in names and "low-latency-fabric" in names


class TestExplorer:
    def test_faster_cpu_gives_faster_steps(self, explorer):
        base = MachineModel.preset("compton")
        slow = Candidate("slow", scale_machine(base, cpu_speed=1.0))
        fast = Candidate("fast", scale_machine(base, cpu_speed=4.0))
        evals = explorer.sweep([slow, fast])
        by = {e.name: e for e in evals}
        assert by["fast"].step_time < by["slow"].step_time
        # CPU speedup shifts the balance toward communication.
        assert by["fast"].comm_fraction > by["slow"].comm_fraction

    def test_evaluation_fields(self, explorer):
        base = MachineModel.preset("compton")
        e = explorer.evaluate(Candidate("base", base))
        assert e.step_time > 0
        assert e.compute_time > 0
        assert e.comm_time > 0
        assert e.step_time == pytest.approx(
            e.compute_time + e.comm_time, rel=0.01
        )
        assert e.chosen_gs_method == "pairwise"
        assert 0 < e.mpi_pct_mean < 100

    def test_rank_and_speedup_table(self, explorer):
        base = MachineModel.preset("compton")
        cands = [
            Candidate("base", base, cost=1.0),
            Candidate("fast", scale_machine(base, cpu_speed=2.0), cost=3.0),
        ]
        evals = explorer.sweep(cands)
        ranked = rank_by_speed(evals)
        assert ranked[0].name == "fast"
        table = speedup_table(evals, baseline_name="base")
        by = {row[0]: row for row in table}
        assert by["base"][2] == pytest.approx(1.0)
        assert by["fast"][2] > 1.0

    def test_speedup_table_unknown_baseline(self, explorer):
        base = MachineModel.preset("compton")
        evals = explorer.sweep([Candidate("only", base)])
        with pytest.raises(KeyError):
            speedup_table(evals, baseline_name="missing")


class TestPareto:
    def _fake_eval(self, name, cost, t):
        cand = Candidate(name, MachineModel.preset("generic"), cost=cost)
        from repro.codesign.explorer import Evaluation

        return Evaluation(
            candidate=cand, step_time=t, compute_time=t * 0.7,
            comm_time=t * 0.3, mpi_pct_mean=10.0,
            chosen_gs_method="pairwise",
        )

    def test_front_excludes_dominated(self):
        a = self._fake_eval("cheap-slow", 1.0, 10.0)
        b = self._fake_eval("dear-fast", 5.0, 2.0)
        c = self._fake_eval("dear-slow", 5.0, 12.0)   # dominated by both
        front = pareto_front([a, b, c])
        names = [e.name for e in front]
        assert names == ["cheap-slow", "dear-fast"]

    def test_bottleneck_labels(self):
        assert bottleneck(self._fake_eval("x", 1, 1)) == "compute"
        e = self._fake_eval("y", 1, 1)
        object.__setattr__(e, "comm_time", 0.9)
        object.__setattr__(e, "compute_time", 0.1)
        assert bottleneck(e) == "communication"
