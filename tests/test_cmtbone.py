"""The CMT-bone mini-app: setup, timestep pipeline, profiling output."""

import numpy as np
import pytest

from repro.core import (
    CMTBoneConfig,
    cmtbone_profile_report,
    comm_fraction,
    dominant_region,
    run_cmtbone,
)
from repro.mpi import Runtime

SMALL = CMTBoneConfig(
    n=8, local_shape=(2, 2, 2), proc_shape=(2, 2, 1), nsteps=3,
    work_mode="real", gs_method="pairwise",
)


def run(cfg, nranks=4):
    rt = Runtime(nranks=nranks)
    return rt, rt.run(run_cmtbone, args=(cfg,))


class TestConfig:
    def test_fig7_matches_paper(self):
        cfg = CMTBoneConfig.fig7()
        assert cfg.n == 10
        assert cfg.nel_local == 100
        assert cfg.proc_shape == (8, 8, 4)
        part = cfg.build_partition(256)
        assert part.mesh.shape == (40, 40, 16)
        assert part.mesh.nelgt == 25600

    def test_local_shape_from_int(self):
        cfg = CMTBoneConfig(local_shape=8)
        assert cfg.nel_local == 8

    def test_proc_shape_mismatch_rejected(self):
        cfg = CMTBoneConfig(proc_shape=(2, 2, 2))
        with pytest.raises(ValueError):
            cfg.build_partition(4)

    def test_bad_work_mode(self):
        with pytest.raises(ValueError):
            CMTBoneConfig(work_mode="imaginary")

    def test_with_override(self):
        cfg = CMTBoneConfig.fig7(nsteps=5)
        assert cfg.nsteps == 5
        assert cfg.n == 10


class TestRun:
    def test_basic_run_returns_results(self):
        _, res = run(SMALL)
        assert len(res) == 4
        for r in res:
            assert r.chosen_method == "pairwise"
            assert r.vtime_total > 0
            assert 0 < r.vtime_comm < r.vtime_total

    def test_ax_dominates_profile(self):
        """The Fig. 4 claim: derivative kernel is the top region."""
        _, res = run(SMALL)
        assert dominant_region(res) == "ax_"

    def test_profile_regions_present(self):
        _, res = run(SMALL)
        names = set(res[0].profiler.stats)
        assert {"ax_", "full2face_cmt", "gs_op_", "add2s2",
                "gs_setup", "cmt_timestep"} <= names

    def test_region_call_counts(self):
        _, res = run(SMALL)
        stats = res[0].profiler.stats
        expected_stages = SMALL.nsteps * SMALL.rk_stages
        assert stats["ax_"].calls == expected_stages
        assert stats["gs_op_"].calls == expected_stages
        assert stats["cmt_timestep"].calls == SMALL.nsteps

    def test_monitor_values_collective(self):
        _, res = run(SMALL)
        for r in res:
            assert len(r.monitor_values) == SMALL.nsteps
        # allreduce(MAX): identical everywhere
        assert len({tuple(r.monitor_values) for r in res}) == 1

    def test_proxy_mode_same_comm_pattern(self):
        """Proxy mode skips math but produces identical message counts."""
        _, res_real = run(SMALL)
        rt_proxy, res_proxy = run(SMALL.with_(work_mode="proxy"))
        rt_real, _ = Runtime(nranks=4), None  # placeholder; recompute below

        rt1 = Runtime(nranks=4)
        rt1.run(run_cmtbone, args=(SMALL,))
        rt2 = Runtime(nranks=4)
        rt2.run(run_cmtbone, args=(SMALL.with_(work_mode="proxy"),))
        counts1 = {
            (r.op, r.site): r.count for r in rt1.job_profile().aggregates()
        }
        counts2 = {
            (r.op, r.site): r.count for r in rt2.job_profile().aggregates()
        }
        assert counts1 == counts2

    def test_autotune_when_no_method(self):
        cfg = SMALL.with_(gs_method=None)
        _, res = run(cfg)
        assert res[0].autotune is not None
        assert set(res[0].autotune) == {"pairwise", "crystal", "allreduce"}
        assert res[0].chosen_method == min(
            res[0].autotune.values(), key=lambda t: t.avg
        ).method

    def test_single_rank(self):
        cfg = CMTBoneConfig(
            n=4, local_shape=(2, 1, 1), proc_shape=(1, 1, 1), nsteps=2
        )
        rt = Runtime(nranks=1)
        res = rt.run(run_cmtbone, args=(cfg,))
        assert res[0].vtime_comm >= 0

    def test_deterministic_vtimes(self):
        _, res1 = run(SMALL)
        _, res2 = run(SMALL)
        for a, b in zip(res1, res2):
            assert a.vtime_total == b.vtime_total


class TestImbalance:
    def test_imbalance_widens_wait_and_fractions(self):
        balanced = SMALL.with_(work_mode="proxy", nsteps=6)
        skewed = balanced.with_(compute_imbalance=0.3)
        rt_b = Runtime(nranks=4)
        res_b = rt_b.run(run_cmtbone, args=(balanced,))
        rt_s = Runtime(nranks=4)
        res_s = rt_s.run(run_cmtbone, args=(skewed,))
        spread_b = np.ptp(comm_fraction(res_b))
        spread_s = np.ptp(comm_fraction(res_s))
        assert spread_s > spread_b

    def test_wait_time_grows_with_imbalance(self):
        from repro.analysis import wait_dominance

        cfg = SMALL.with_(work_mode="proxy", nsteps=6, compute_imbalance=0.4)
        rt = Runtime(nranks=4)
        rt.run(run_cmtbone, args=(cfg,))
        op, share = wait_dominance(rt.job_profile())
        assert op == "MPI_Wait"
        assert share > 0.3


class TestReports:
    def test_profile_report_renders(self):
        _, res = run(SMALL)
        text = cmtbone_profile_report(res)
        assert "ax_" in text
        assert "% time" in text
