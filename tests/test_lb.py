"""Dynamic load balancing: SFC ordering, assignment, migration, policy."""

import numpy as np
import pytest

from repro.faults import CrashEvent, FaultPlan
from repro.lb import (
    CostMonitor,
    ElementAssignment,
    LoadBalancer,
    RankCost,
    RebalancePolicy,
    capacities_from_costs,
    chunk_bounds,
    cost_imbalance,
    element_ids,
    id_to_coords,
    migrate_elements,
    morton_keys,
    refine_bounds,
    sfc_order,
    sfc_partition,
)
from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import (
    CMTSolver,
    SolverConfig,
    run_with_recovery,
    uniform_state,
)


class TestSFC:
    @pytest.mark.parametrize("shape", [(4, 4, 4), (8, 2, 1), (1, 1, 7),
                                       (3, 5, 2)])
    def test_order_is_permutation(self, shape):
        order = sfc_order(shape)
        n = shape[0] * shape[1] * shape[2]
        assert sorted(order.tolist()) == list(range(n))

    def test_id_coords_roundtrip(self):
        shape = (3, 4, 5)
        ids = np.arange(60)
        assert np.array_equal(
            element_ids(shape, id_to_coords(shape, ids)), ids
        )

    def test_morton_locality(self):
        """Consecutive curve points on a cube are near each other."""
        shape = (8, 8, 8)
        coords = id_to_coords(shape, sfc_order(shape))
        hops = np.abs(np.diff(coords, axis=0)).sum(axis=1)
        # A Morton curve jumps occasionally but the mean hop is small;
        # lex order across a 8x8 plane would average ~2.7.
        assert hops.mean() < 2.5

    def test_keys_unique(self):
        shape = (4, 3, 2)
        coords = id_to_coords(shape, np.arange(24))
        keys = morton_keys(shape, coords)
        assert len(np.unique(keys)) == 24


class TestAssignment:
    def test_identity_overlay_matches_brick(self):
        mesh = BoxMesh(shape=(4, 4, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 2, 1))
        asg = ElementAssignment.from_partition(part)
        for rank in range(4):
            assert asg.local_elements(rank) == part.local_elements(rank)
            assert np.array_equal(
                asg.boundary_mask(rank), part.boundary_mask(rank)
            )

    def test_serialization_roundtrip(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        owner = np.array([0, 0, 0, 1, 1, 1, 1, 0])
        asg = ElementAssignment(mesh, 2, owner)
        back = ElementAssignment.from_dict(mesh, asg.to_dict())
        assert back.same_as(asg)
        assert back.nel_of(0) == 4

    def test_rejects_empty_rank_and_bad_owner(self):
        mesh = BoxMesh(shape=(2, 2, 1), n=3)
        with pytest.raises(ValueError):
            ElementAssignment(mesh, 2, np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            ElementAssignment(mesh, 2, np.array([0, 1, 1, 5]))

    def test_local_indices_roundtrip(self):
        mesh = BoxMesh(shape=(2, 2, 2), n=3)
        owner = np.array([1, 0, 0, 1, 0, 1, 1, 0])
        asg = ElementAssignment(mesh, 2, owner)
        for rank in range(2):
            els = np.array(asg.local_elements(rank))
            assert np.array_equal(
                asg.local_indices(rank, els), np.arange(len(els))
            )
        with pytest.raises(ValueError):
            asg.local_index(0, tuple(asg.local_elements(1)[0]))


class TestPartitioner:
    def test_uniform_weights_balance(self):
        mesh = BoxMesh(shape=(4, 4, 4), n=3)
        asg = sfc_partition(mesh, 8)
        assert asg.counts().tolist() == [8] * 8

    def test_capacities_skew_counts(self):
        mesh = BoxMesh(shape=(4, 4, 4), n=3)
        cap = np.ones(4)
        cap[0] = 3.0  # rank 0 is 3x faster -> gets more elements
        asg = sfc_partition(mesh, 4, capacities=cap)
        counts = asg.counts()
        assert counts[0] > counts[1:].max()
        assert counts.min() >= 1

    def test_refine_reduces_bottleneck(self):
        w = np.array([5.0, 1, 1, 1, 1, 1, 1, 5])
        cumw = np.cumsum(w)
        bounds = chunk_bounds(cumw, 2, np.ones(2))
        refined = refine_bounds(cumw, bounds, np.ones(2))

        def bottleneck(b):
            sums = [cumw[b[i + 1] - 1] - (cumw[b[i] - 1] if b[i] else 0.0)
                    for i in range(2)]
            return max(sums)

        assert bottleneck(refined) <= bottleneck(bounds)


class TestPolicy:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            RebalancePolicy(mode="sometimes")
        with pytest.raises(ValueError):
            RebalancePolicy(mode="every", every=0)

    def test_auto_threshold_and_hysteresis(self):
        p = RebalancePolicy(mode="auto", threshold=1.2, min_interval=4)
        assert p.enabled and p.wants_check(0)
        assert not p.due(10, -10**9, imbalance=1.1)
        assert p.due(10, -10**9, imbalance=1.3)
        # Too soon after the last rebalance, even if imbalanced.
        assert not p.due(10, 8, imbalance=1.3)

    def test_every_and_manual(self):
        p = RebalancePolicy(mode="every", every=3)
        fired = [s for s in range(9) if p.due(s, -10**9, imbalance=1.0)]
        assert fired == [2, 5, 8]
        m = RebalancePolicy(mode="manual")
        assert m.enabled and not m.wants_check(5)


class TestCost:
    def test_imbalance_and_capacities(self):
        costs = [
            RankCost(rank=0, nel=4, volume_seconds=2.0),
            RankCost(rank=1, nel=4, volume_seconds=1.0),
        ]
        assert cost_imbalance(costs) == pytest.approx(2.0 / 1.5)
        cap = capacities_from_costs(costs)
        assert cap[1] == pytest.approx(2.0 * cap[0])

    def test_monitor_windows(self):
        def main(comm):
            mon = CostMonitor(comm.clock)
            for _ in range(3):
                mon.begin_step()
                comm.compute(seconds=1e-3)
                mon.charge_particles(2e-4)
                mon.end_step(nel=4, nparticles=7)
            cost = mon.window_cost(comm.rank)
            mon.reset_window()
            return cost, mon.window_steps

        cost, steps = Runtime(nranks=1).run(main)[0]
        assert steps == 0
        assert cost.steps == 3
        assert cost.particle_seconds == pytest.approx(3 * 2e-4)
        assert cost.volume_seconds == pytest.approx(3 * 8e-4)


class TestMigration:
    def test_element_roundtrip_by_gid(self):
        mesh = BoxMesh(shape=(4, 2, 1), n=3)
        part = Partition(mesh, proc_shape=(2, 1, 1))
        new = ElementAssignment(
            mesh, 2, np.array([0, 0, 0, 1, 1, 0, 1, 1])
        )

        def main(comm):
            asg = ElementAssignment.from_partition(part)
            old_ids = asg.element_ids_of(comm.rank)
            # Field whose value encodes the global element id.
            u = old_ids.astype(np.float64).reshape(1, -1) * 10.0
            out, stats = migrate_elements(
                comm, old_ids, new, [("u", u, 1)]
            )
            return out["u"], stats

        for rank, (u, stats) in enumerate(Runtime(nranks=2).run(main)):
            expect = new.element_ids_of(rank).astype(np.float64) * 10.0
            assert np.array_equal(u.ravel(), expect)
            assert stats.elements_sent >= 1

    def test_load_balancer_moves_work(self):
        """Slow rank sheds elements after a monitored window."""
        mesh = BoxMesh(shape=(4, 2, 2), n=3)
        part = Partition(mesh, proc_shape=(2, 1, 1))
        policy = RebalancePolicy(mode="auto", threshold=1.05,
                                 min_interval=0)

        def main(comm):
            lb = LoadBalancer(
                comm, ElementAssignment.from_partition(part), policy
            )
            slow = 2.0 if comm.rank == 0 else 1.0
            for step in range(4):
                lb.monitor.begin_step()
                comm.compute(seconds=1e-3 * slow)
                lb.monitor.end_step(nel=lb.assignment.nel_of(comm.rank))
            proposal = lb.propose(step=3)
            if proposal is not None:
                lb.commit(proposal, step=3)
            return lb.assignment.counts(), lb.rebalances

        for counts, rebalances in Runtime(nranks=2).run(main):
            assert rebalances == 1
            assert counts[0] < counts[1]


MESH = BoxMesh(shape=(4, 2, 2), n=4)
PART = Partition(MESH, proc_shape=(4, 1, 1))
DT = 1e-3


def _state():
    st = uniform_state(PART.nel_local, MESH.n, vel=(0.2, 0.1, 0.0))
    st.u[0] += 1e-3 * np.sin(
        np.arange(st.u[0].size)
    ).reshape(st.u[0].shape)
    return st


def _setup_lb(policy):
    def setup(comm):
        solver = CMTSolver(
            comm, PART,
            config=SolverConfig(
                gs_method="pairwise",
                compute_imbalance=0.4,
                lb=policy,
            ),
        )
        return solver, _state()

    return setup


def _fields_by_gid(comm_results):
    fields = {}
    for solver_ids, u in comm_results:
        for k, gid in enumerate(solver_ids):
            fields[int(gid)] = u[:, k]
    return fields


class TestSolverIntegration:
    def test_bitwise_identity_vs_static(self):
        """LB on, fault-free == LB off, compared by global element id."""

        def run(policy):
            def main(comm):
                solver, st = _setup_lb(policy)(comm)
                final = solver.run(st, nsteps=10, dt=DT)
                return solver.local_element_ids(), final.u

            return _fields_by_gid(Runtime(nranks=4).run(main))

        off = run(None)
        on = run(RebalancePolicy(mode="every", every=4, min_interval=0))
        assert off.keys() == on.keys()
        for gid in off:
            assert np.array_equal(off[gid], on[gid])

    def test_rebalance_fires_in_run_loop(self):
        policy = RebalancePolicy(mode="every", every=4, min_interval=0)

        def main(comm):
            solver, st = _setup_lb(policy)(comm)
            solver.run(st, nsteps=6, dt=DT)
            return solver.lb.rebalances, solver.nel

        res = Runtime(nranks=4).run(main)
        assert all(r >= 1 for r, _nel in res)
        # The injected imbalance skews the layout away from uniform.
        assert sorted(nel for _r, nel in res) != [4, 4, 4, 4]

    def test_crash_recovery_restores_rebalanced_layout(self, tmp_path):
        """Restart from a post-rebalance checkpoint matches fault-free."""
        policy = RebalancePolicy(mode="every", every=3, min_interval=0)
        plan = FaultPlan(crashes=(CrashEvent(rank=1, step=7),))
        faulty, rep = run_with_recovery(
            _setup_lb(policy), nranks=4, nsteps=10, dt=DT,
            checkpoint_every=2, checkpoint_dir=tmp_path / "ck",
            fault_plan=plan,
        )
        clean, _ = run_with_recovery(
            _setup_lb(policy), nranks=4, nsteps=10, dt=DT,
        )
        assert len(rep.attempts) == 2
        for a, b in zip(clean, faulty):
            assert np.array_equal(a.u, b.u)
