"""repro.bench — schema round-trip, runner contracts, comparator, CLI.

The perf gate is only trustworthy if its own machinery is tested: a
comparator that never fires, a runner that silently averages away
nondeterminism, or a schema that drops fields would all make the CI
job green while measuring nothing.
"""

import json

import pytest

from repro.bench import (
    BASELINE_FILENAMES,
    GROUPS,
    Metric,
    RunOptions,
    ScenarioResult,
    SuiteResult,
    compare_dirs,
    compare_suites,
    get_scenario,
    run_scenario,
    run_suites,
    select_scenarios,
    write_suites,
)
from repro.bench.compare import IMPROVED, INFO, OK, REGRESSION
from repro.bench.runner import BenchRunError, host_fingerprint
from repro.bench.scenarios import Scenario
from repro.bench.schema import SCHEMA_VERSION, BenchSchemaError
from repro.cli import main as cli_main


def _suite(metrics, scenario="solver/test", group="solver", meta=None):
    return SuiteResult(
        group=group,
        meta=meta or {},
        results=[
            ScenarioResult(
                scenario=scenario,
                group=group,
                params={"n": 5},
                repeats=2,
                metrics=metrics,
            )
        ],
    )


# -- schema ---------------------------------------------------------------


class TestSchema:
    def test_round_trip(self, tmp_path):
        suite = _suite(
            [
                Metric("wall_s", 0.25, kind="wall", stats={"mean": 0.3}),
                Metric("vtime_s", 1.5e-3, kind="virtual"),
                Metric("restarts", 1.0, kind="count", unit="restarts"),
                Metric(
                    "speedup_x",
                    2.0,
                    kind="wall",
                    unit="x",
                    better="higher",
                    rel_tol=0.5,
                ),
            ],
            meta={"host": {"fingerprint": "abc"}},
        )
        path = suite.write(tmp_path / "BENCH_solver.json")
        back = SuiteResult.read(path)
        assert back.to_json() == suite.to_json()
        assert back.schema_version == SCHEMA_VERSION
        m = back.scenario("solver/test").metric("speedup_x")
        assert m.better == "higher" and m.rel_tol == 0.5
        assert back.scenario("solver/test").metric("wall_s").stats == {
            "mean": 0.3
        }

    def test_json_is_versioned(self, tmp_path):
        suite = _suite([Metric("x", 1.0)])
        doc = json.loads(suite.dumps())
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_unknown_version_rejected(self):
        doc = _suite([Metric("x", 1.0)]).to_json()
        doc["schema_version"] = 999
        with pytest.raises(BenchSchemaError, match="schema_version"):
            SuiteResult.from_json(doc)

    def test_bad_kind_rejected(self):
        with pytest.raises(BenchSchemaError, match="kind"):
            Metric("x", 1.0, kind="cpu")

    def test_bad_better_rejected(self):
        with pytest.raises(BenchSchemaError, match="better"):
            Metric("x", 1.0, better="sideways")

    def test_bad_group_rejected(self):
        with pytest.raises(BenchSchemaError, match="group"):
            SuiteResult(group="misc")

    def test_missing_key_rejected(self):
        with pytest.raises(BenchSchemaError, match="value"):
            Metric.from_json({"name": "x"})

    def test_garbage_file_rejected(self, tmp_path):
        p = tmp_path / "BENCH_solver.json"
        p.write_text("not json {")
        with pytest.raises(BenchSchemaError, match="JSON"):
            SuiteResult.read(p)


# -- runner ---------------------------------------------------------------


def _scenario(fn, repeats=2):
    return Scenario(
        id="solver/fake",
        group="solver",
        fn=fn,
        repeats=repeats,
        params={"p": 1},
    )


class TestRunner:
    def test_wall_metrics_aggregate_over_repeats(self):
        values = iter([0.5, 0.2, 0.3])
        s = _scenario(
            lambda: [Metric("wall_s", next(values), kind="wall")],
            repeats=3,
        )
        result = run_scenario(s)
        m = result.metric("wall_s")
        assert m.value == 0.2  # min over repeats for better="lower"
        assert m.stats["max"] == 0.5
        assert m.stats["repeats"] == 3.0
        assert result.repeats == 3

    def test_virtual_metrics_must_be_deterministic(self):
        s = _scenario(lambda: [Metric("vtime_s", 1.25, kind="virtual")])
        assert run_scenario(s).metric("vtime_s").value == 1.25

    def test_nondeterministic_virtual_metric_raises(self):
        values = iter([1.0, 1.0000001])
        s = _scenario(
            lambda: [Metric("vtime_s", next(values), kind="virtual")]
        )
        with pytest.raises(BenchRunError, match="not .*deterministic"):
            run_scenario(s)

    def test_registry_scenario_is_deterministic(self):
        # A real registered scenario with virtual metrics: two repeats
        # must agree exactly (the runner raises otherwise).
        result = run_scenario(get_scenario("solver/fault_campaign"), repeats=2)
        assert result.metric("campaign_vtime_s").kind == "virtual"
        assert result.metric("restarts").value == 1.0

    def test_registry_covers_all_groups(self):
        by_group = {s.group for s in select_scenarios()}
        assert by_group == set(GROUPS)

    def test_fast_selection_excludes_slow(self):
        fast = {s.id for s in select_scenarios(fast_only=True)}
        assert "solver/lb_imbalance" not in fast
        assert "kernels/workspace" in fast


# -- comparator -----------------------------------------------------------


class TestComparator:
    def test_within_tolerance_passes(self):
        base = _suite([Metric("vtime_s", 1.0, kind="virtual")])
        cur = _suite([Metric("vtime_s", 1.0 + 1e-9, kind="virtual")])
        report = compare_suites(cur, base, gate_wall=True)
        assert report.ok
        assert report.deltas[0].status == OK

    def test_injected_regression_flagged(self):
        base = _suite([Metric("vtime_s", 1.0, kind="virtual")])
        cur = _suite([Metric("vtime_s", 1.001, kind="virtual")])
        report = compare_suites(cur, base, gate_wall=True)
        assert not report.ok
        assert report.deltas[0].status == REGRESSION

    def test_higher_is_better_direction(self):
        base = _suite(
            [Metric("speedup_x", 2.0, kind="virtual", better="higher")]
        )
        worse = _suite(
            [Metric("speedup_x", 1.5, kind="virtual", better="higher")]
        )
        better = _suite(
            [Metric("speedup_x", 2.5, kind="virtual", better="higher")]
        )
        assert not compare_suites(worse, base, gate_wall=True).ok
        rep = compare_suites(better, base, gate_wall=True)
        assert rep.ok and rep.deltas[0].status == IMPROVED

    def test_count_metrics_gate_exactly(self):
        base = _suite([Metric("restarts", 1.0, kind="count")])
        cur = _suite([Metric("restarts", 2.0, kind="count")])
        assert not compare_suites(cur, base, gate_wall=True).ok

    def test_wall_tolerance_is_loose(self):
        base = _suite([Metric("wall_s", 1.0, kind="wall")])
        jitter = _suite([Metric("wall_s", 1.8, kind="wall")])
        blowup = _suite([Metric("wall_s", 2.5, kind="wall")])
        assert compare_suites(jitter, base, gate_wall=True).ok
        assert not compare_suites(blowup, base, gate_wall=True).ok

    def test_wall_not_gated_on_foreign_host(self):
        base = _suite(
            [Metric("wall_s", 1.0, kind="wall")],
            meta={"host": {"fingerprint": "someone-elses-box"}},
        )
        cur = _suite([Metric("wall_s", 50.0, kind="wall")])
        report = compare_suites(cur, base)  # gate_wall=None -> auto
        assert report.ok
        assert report.deltas[0].status == INFO
        assert not report.wall_gated

    def test_wall_gated_when_fingerprint_matches(self):
        base = _suite(
            [Metric("wall_s", 1.0, kind="wall")],
            meta={"host": {"fingerprint": host_fingerprint()}},
        )
        cur = _suite([Metric("wall_s", 50.0, kind="wall")])
        assert not compare_suites(cur, base).ok

    def test_per_metric_tolerance_override(self):
        base = _suite([Metric("vtime_s", 1.0, kind="virtual", rel_tol=0.5)])
        cur = _suite([Metric("vtime_s", 1.4, kind="virtual")])
        assert compare_suites(cur, base, gate_wall=True).ok

    def test_missing_metric_is_regression(self):
        base = _suite(
            [
                Metric("vtime_s", 1.0, kind="virtual"),
                Metric("gone_s", 2.0, kind="virtual"),
            ]
        )
        cur = _suite([Metric("vtime_s", 1.0, kind="virtual")])
        report = compare_suites(cur, base, gate_wall=True)
        assert not report.ok
        assert report.regressions[0].metric == "gone_s"

    def test_new_scenario_without_baseline_passes(self):
        base = _suite([Metric("vtime_s", 1.0, kind="virtual")])
        cur = _suite([Metric("vtime_s", 1.0, kind="virtual")])
        cur.results.append(
            ScenarioResult(
                scenario="solver/brand_new",
                group="solver",
                metrics=[Metric("x", 1.0)],
            )
        )
        report = compare_suites(cur, base, gate_wall=True)
        assert report.ok
        assert report.new_scenarios == ["solver/brand_new"]

    def test_missing_baseline_group_warns_not_fails(self, tmp_path):
        cur = {"solver": _suite([Metric("vtime_s", 1.0, kind="virtual")])}
        report = compare_dirs(cur, tmp_path)
        assert report.ok
        assert report.missing_groups == ["solver"]

    def test_group_mismatch_rejected(self):
        with pytest.raises(ValueError, match="group mismatch"):
            compare_suites(
                _suite([Metric("x", 1.0)]),
                _suite([Metric("x", 1.0)], group="comms"),
            )


# -- end to end through the runner + CLI ----------------------------------


def _bench_cli(*argv):
    return cli_main(["bench", *argv])


class TestEndToEnd:
    def test_run_suites_and_compare_round_trip(self, tmp_path):
        opts = RunOptions(groups=("comms",), repeats=1)
        suites = run_suites(opts)
        assert set(suites) == {"comms"}
        meta = suites["comms"].meta
        assert meta["host"]["fingerprint"] == host_fingerprint()
        assert "numpy" in meta["host"]
        paths = write_suites(suites, tmp_path)
        assert [p.name for p in paths] == [BASELINE_FILENAMES["comms"]]
        # Virtual metrics are deterministic, so a re-run compares clean
        # against the first run as baseline.
        rerun = run_suites(opts)
        report = compare_dirs(rerun, tmp_path, gate_wall=False)
        assert report.ok, report.render(verbose=True)
        assert len(report.deltas) > 0

    def test_cli_bench_compare_smoke(self, tmp_path, capsys):
        baseline = tmp_path / "baselines"
        out = tmp_path / "out"
        rc = _bench_cli(
            "--group",
            "comms",
            "--repeats",
            "1",
            "--out",
            str(out),
            "--compare",
            str(baseline),
            "--update-baselines",
        )
        # First run: no baseline yet -> warn-and-skip, then write one.
        assert rc == 0
        assert (baseline / "BENCH_comms.json").exists()
        assert (out / "BENCH_comms.json").exists()

        rc = _bench_cli(
            "--group",
            "comms",
            "--repeats",
            "1",
            "--out",
            str(out),
            "--compare",
            str(baseline),
        )
        assert rc == 0
        assert "PERF GATE: PASS" in capsys.readouterr().out

    def test_cli_bench_detects_tampered_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baselines"
        out = tmp_path / "out"
        rc = _bench_cli(
            "--group",
            "comms",
            "--repeats",
            "1",
            "--out",
            str(out),
            "--update-baselines",
            "--compare",
            str(baseline),
        )
        assert rc == 0
        path = baseline / "BENCH_comms.json"
        doc = json.loads(path.read_text())
        for result in doc["results"]:
            for metric in result["metrics"]:
                if metric["kind"] == "virtual":
                    metric["value"] *= 0.5
        path.write_text(json.dumps(doc))
        rc = _bench_cli(
            "--group",
            "comms",
            "--repeats",
            "1",
            "--out",
            str(out),
            "--compare",
            str(baseline),
        )
        assert rc == 1
        assert "PERF GATE: FAIL" in capsys.readouterr().out

    def test_cli_bench_list(self, capsys):
        assert cli_main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "kernels/deriv_n05" in out
        assert "solver/fault_campaign" in out
