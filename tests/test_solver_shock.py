"""Shock capturing: modal transforms, sensor, adaptive filter."""

import numpy as np
import pytest

from repro.kernels.gll import gll_points
from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import CMTSolver, RHO, SolverConfig, from_primitives
from repro.solver.shock import (
    ShockFilter,
    element_integrals,
    exponential_sigma,
    modal_energy_fraction,
    modal_to_nodal,
    nodal_to_modal,
    smoothness_sensor,
    vandermonde,
)


def poly_field(n, nel=2, degree=2):
    x = np.asarray(gll_points(n))
    r = x[:, None, None]
    s = x[None, :, None]
    u = 1.0 + r**degree + 0.3 * r * s
    return np.broadcast_to(u, (nel, n, n, n)).copy()


def rough_field(n, nel=2, seed=0):
    return np.random.default_rng(seed).standard_normal((nel, n, n, n))


class TestModalTransforms:
    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_roundtrip_identity(self, n):
        u = rough_field(n)
        np.testing.assert_allclose(
            modal_to_nodal(nodal_to_modal(u)), u, atol=1e-10
        )

    def test_constant_is_mode_zero(self):
        n = 5
        u = np.full((1, n, n, n), 3.0)
        c = nodal_to_modal(u)
        assert c[0, 0, 0, 0] == pytest.approx(3.0)
        c[0, 0, 0, 0] = 0.0
        np.testing.assert_allclose(c, 0.0, atol=1e-12)

    def test_linear_is_mode_one(self):
        n = 5
        x = np.asarray(gll_points(n))
        u = np.broadcast_to(x[:, None, None], (1, n, n, n)).copy()
        c = nodal_to_modal(u)
        assert c[0, 1, 0, 0] == pytest.approx(1.0)  # P_1 = x
        c[0, 1, 0, 0] = 0.0
        np.testing.assert_allclose(c, 0.0, atol=1e-12)

    def test_vandermonde_values(self):
        v = np.asarray(vandermonde(4))
        np.testing.assert_allclose(v[:, 0], 1.0)  # P_0


class TestSensor:
    def test_smooth_data_reads_low(self):
        s = smoothness_sensor(poly_field(8))
        assert np.all(s < -8.0)

    def test_rough_data_reads_high(self):
        s = smoothness_sensor(rough_field(8))
        assert np.all(s > -2.0)

    def test_discontinuity_reads_high(self):
        n = 8
        x = np.asarray(gll_points(n))
        u = np.where(x[:, None, None] > 0, 1.0, 0.0)
        u = np.broadcast_to(u, (1, n, n, n)).copy()
        s = smoothness_sensor(u)
        # A 1-D step in 3-D data: the x top-mode energy is diluted over
        # the shell, but the sensor still reads far above smooth levels.
        assert s[0] > -3.0

    def test_energy_fraction_bounds(self):
        f = modal_energy_fraction(rough_field(6, nel=5, seed=3))
        assert np.all((0 <= f) & (f <= 1))

    def test_zero_field(self):
        f = modal_energy_fraction(np.zeros((2, 5, 5, 5)))
        np.testing.assert_array_equal(f, 0.0)


class TestExponentialSigma:
    def test_mode_zero_untouched(self):
        sigma = exponential_sigma(8)
        assert sigma[0] == 1.0
        assert sigma[1] == 1.0  # default cutoff 1

    def test_top_mode_strongly_damped(self):
        sigma = exponential_sigma(8, alpha=36.0)
        assert sigma[-1] == pytest.approx(np.exp(-36.0))

    def test_monotone_decay(self):
        sigma = exponential_sigma(10)
        assert np.all(np.diff(sigma) <= 1e-15)

    def test_cutoff_validation(self):
        with pytest.raises(ValueError):
            exponential_sigma(5, cutoff=5)


class TestShockFilter:
    def test_smooth_elements_pass_through_exactly(self):
        n = 8
        filt = ShockFilter(n=n)
        u = poly_field(n)
        out = filt.apply(u)
        np.testing.assert_array_equal(out, u)  # bit-identical

    def test_rough_elements_get_smoothed(self):
        n = 8
        filt = ShockFilter(n=n, threshold=-6.0)
        u = rough_field(n)
        out = filt.apply(u)
        before = modal_energy_fraction(u)
        after = modal_energy_fraction(out)
        assert np.all(after < before)

    def test_conservative_per_element(self):
        """Element integrals are invariant under the filter."""
        n = 8
        filt = ShockFilter(n=n, threshold=-10.0)
        u = rough_field(n, nel=4, seed=1)
        out = filt.apply(u)
        np.testing.assert_allclose(
            element_integrals(out), element_integrals(u), rtol=1e-12
        )

    def test_selective_application(self):
        """Only elements above threshold are touched."""
        n = 8
        smooth = poly_field(n, nel=1)
        rough = rough_field(n, nel=1)
        u = np.concatenate([smooth, rough], axis=0)
        filt = ShockFilter(n=n, threshold=-6.0)
        out = filt.apply(u)
        np.testing.assert_array_equal(out[0], u[0])
        assert np.max(np.abs(out[1] - u[1])) > 1e-8

    def test_apply_state_senses_on_density(self):
        n = 6
        filt = ShockFilter(n=n, threshold=-6.0)
        state = np.stack([rough_field(n, nel=2, seed=c) for c in range(5)])
        out = filt.apply_state(state)
        assert out.shape == state.shape

    def test_wrong_n_rejected(self):
        filt = ShockFilter(n=6)
        with pytest.raises(ValueError):
            filt.apply(np.zeros((1, 5, 5, 5)))


class TestShockCapturingEndToEnd:
    """A large-amplitude wave steepens into a shock; the filter keeps
    the solution physical where the bare scheme rings itself to death.
    """

    MESH = BoxMesh(shape=(8, 1, 1), n=8, lengths=(2.0, 1.0, 1.0))
    PART = Partition(MESH, proc_shape=(2, 1, 1))

    def _run(self, use_filter, nsteps=220):
        mesh, part = self.MESH, self.PART

        def main(comm):
            filt = (
                ShockFilter(n=mesh.n, threshold=-4.0, ramp=1.5)
                if use_filter else None
            )
            solver = CMTSolver(
                comm, part,
                config=SolverConfig(
                    gs_method="pairwise", cfl=0.25, shock_filter=filt
                ),
            )
            coords = np.stack(
                [mesh.element_nodes(ec)
                 for ec in part.local_elements(comm.rank)],
                axis=1,
            )
            x = coords[0]
            # Strongly nonlinear acoustic pulse -> steepens into a shock.
            amp = 0.4
            bump = amp * np.sin(np.pi * x)
            rho = 1.0 + bump
            p = (1.0 + bump) ** 1.4          # isentropic relation
            vel = np.zeros((3,) + rho.shape)
            vel[0] = 2.0 / 0.4 * (
                np.sqrt(1.4 * p / rho) - np.sqrt(1.4)
            )  # simple-wave velocity
            state = from_primitives(rho, vel, p)
            mass0 = solver.integrate(state.u[RHO])
            ok = True
            dt = solver.stable_dt(state)
            for _ in range(nsteps):
                state = solver.step(state, dt)
                if not state.is_physical() or not np.all(
                    np.isfinite(state.u)
                ):
                    ok = False
                    break
            mass1 = solver.integrate(state.u[RHO]) if ok else np.nan
            umax = float(np.max(np.abs(state.u))) if ok else np.inf
            return ok, mass0, mass1, umax

        return Runtime(nranks=2).run(main)

    def test_filtered_run_survives_and_conserves(self):
        res = self._run(use_filter=True)
        ok, m0, m1, umax = res[0]
        assert ok
        assert m1 == pytest.approx(m0, abs=1e-9)
        assert umax < 50.0

    def test_filter_improves_robustness(self):
        """Bare vs filtered on the steepening wave: the filtered run
        must stay physical at least as long, and strictly healthier."""
        bare = self._run(use_filter=False)
        filt = self._run(use_filter=True)
        bare_ok = bare[0][0]
        filt_ok = filt[0][0]
        assert filt_ok
        if bare_ok:
            # If the bare run survives, it must exhibit at least as
            # much extreme-value growth as the filtered one.
            assert bare[0][3] >= filt[0][3] * 0.99
