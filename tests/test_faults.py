"""Fault injection, crash recovery, and deterministic replay.

Covers the resilience subsystem end to end: the :class:`FaultPlan` spec
grammar, the Young/Daly checkpoint-interval model, deterministic replay
of lossy/degraded runs across all three gather-scatter methods, the
crash-recovery restart loop (bitwise-identical physics plus lost-work
accounting), abort propagation out of blocked waits, and a seeded chaos
sweep that must always terminate.
"""

import time as wallclock

import numpy as np
import pytest

from repro.faults import CrashEvent, DegradeEvent, DropEvent, FaultPlan, drop_unit
from repro.gs import gs_op_begin, gs_op_finish, gs_setup
from repro.mesh import BoxMesh, Partition
from repro.mpi import RankCrashError, Runtime, SUM
from repro.perfmodel import MachineModel
from repro.solver import (
    CMTSolver,
    SolverConfig,
    run_with_recovery,
    uniform_state,
)

MESH = BoxMesh(shape=(4, 2, 2), n=4)
PART = Partition(MESH, proc_shape=(2, 1, 1))
DT = 1e-3


def _initial_state():
    st = uniform_state(PART.nel_local, MESH.n, vel=(0.2, 0.0, 0.0))
    st.u[0] += 1e-3 * np.sin(
        np.arange(st.u[0].size)
    ).reshape(st.u[0].shape)
    return st


def _setup(gs_method="pairwise"):
    def setup(comm):
        solver = CMTSolver(
            comm, PART, config=SolverConfig(gs_method=gs_method)
        )
        return solver, _initial_state()

    return setup


def _run_solver(gs_method, plan, nsteps=4):
    """(per-rank fields, per-rank clock totals) of one direct launch."""

    def main(comm):
        solver = CMTSolver(
            comm, PART, config=SolverConfig(gs_method=gs_method)
        )
        return solver.run(_initial_state(), nsteps=nsteps, dt=DT).u

    rt = Runtime(nranks=2, fault_plan=plan)
    fields = rt.run(main)
    return fields, [s.total for s in rt.clock_stats()]


# ---------------------------------------------------------------------------
# fault-plan spec grammar
# ---------------------------------------------------------------------------


class TestFaultPlanSpec:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "crash:rank=1,step=5;"
            "crash:rank=0,time=2.5e-3;"
            "drop:src=0,dst=1,nth=3;"
            "drop:p=0.02;"
            "degrade:factor=4,src=2,dst=3",
            seed=7,
        )
        assert plan.crashes == (
            CrashEvent(rank=1, step=5),
            CrashEvent(rank=0, time=2.5e-3),
        )
        assert plan.drops == (
            DropEvent(src=0, dst=1, nth=3),
            DropEvent(p=0.02),
        )
        assert plan.degrades == (DegradeEvent(factor=4.0, src=2, dst=3),)
        assert plan.seed == 7

    def test_spec_round_trips(self):
        plan = FaultPlan.parse(
            "crash:rank=1,step=5;drop:src=0,dst=1,nth=3;degrade:factor=2"
        )
        again = FaultPlan.parse(plan.spec())
        assert again.events == plan.events

    @pytest.mark.parametrize("bad", [
        "crash:rank=1",                    # no trigger
        "crash:rank=1,step=2,time=1.0",    # both triggers
        "crash:step=2",                    # no rank
        "crash:rank=nope,step=2",          # non-integer
        "drop:src=0",                      # no nth/p
        "drop:nth=0",                      # nth is 1-based
        "drop:p=1.5",                      # p out of range
        "degrade:src=0,dst=1",             # no factor
        "degrade:factor=0.5",              # factor < 1
        "blowup:x=1",                      # unknown kind
        "crash:rank=1,step=5,when=now",    # unknown key
        "crash rank=1",                    # malformed pair
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError, match="fault"):
            FaultPlan.parse(bad)

    def test_random_plans_are_seed_deterministic(self):
        assert FaultPlan.random(7, 4, 20) == FaultPlan.random(7, 4, 20)
        plans = {FaultPlan.random(s, 4, 20) for s in range(10)}
        assert len(plans) > 1

    def test_without_disarms_fired_crash(self):
        fired = CrashEvent(rank=1, step=5)
        plan = FaultPlan(crashes=(fired, CrashEvent(rank=0, step=9)))
        pruned = plan.without(fired)
        assert pruned.crashes == (CrashEvent(rank=0, step=9),)
        # Everything else survives the pruning untouched.
        assert pruned.seed == plan.seed and pruned.drops == plan.drops

    def test_drop_unit_is_a_deterministic_uniform(self):
        a = drop_unit(3, 0, 1, 17, 0)
        assert a == drop_unit(3, 0, 1, 17, 0)
        assert 0.0 <= a < 1.0
        # Each retransmission attempt re-rolls.
        assert a != drop_unit(3, 0, 1, 17, 1)
        assert a != drop_unit(4, 0, 1, 17, 0)


# ---------------------------------------------------------------------------
# Young/Daly checkpoint-interval model
# ---------------------------------------------------------------------------


class TestYoungDaly:
    def test_formula(self):
        tau = MachineModel.young_daly_interval(10.0, 10_000.0)
        assert tau == pytest.approx((2 * 10.0 * 10_000.0) ** 0.5 - 10.0)

    def test_clamped_to_checkpoint_cost(self):
        # MTBF so short the formula goes negative: never checkpoint
        # more often than the checkpoint itself takes.
        assert MachineModel.young_daly_interval(100.0, 1.0) == 100.0

    @pytest.mark.parametrize("c,m", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_rejects_nonpositive_inputs(self, c, m):
        with pytest.raises(ValueError):
            MachineModel.young_daly_interval(c, m)

    def test_checkpoint_seconds(self):
        machine = MachineModel.default()
        t = machine.checkpoint_seconds(10**9)
        assert t == pytest.approx(
            machine.io_latency + 10**9 / machine.io_bandwidth
        )
        with pytest.raises(ValueError):
            machine.checkpoint_seconds(-1)


# ---------------------------------------------------------------------------
# deterministic replay under drops/degradation (all three gs methods)
# ---------------------------------------------------------------------------


class TestDeterministicReplay:
    PLAN = FaultPlan.parse(
        "drop:src=0,dst=1,nth=1;drop:p=0.03;degrade:factor=3,src=0,dst=1",
        seed=42,
    )

    @pytest.mark.parametrize("gs_method", ["pairwise", "crystal", "allreduce"])
    def test_same_plan_same_bits_same_vtime(self, gs_method):
        """Same seed + plan: bitwise fields and identical clock totals."""
        u1, t1 = _run_solver(gs_method, self.PLAN)
        u2, t2 = _run_solver(gs_method, self.PLAN)
        for a, b in zip(u1, u2):
            np.testing.assert_array_equal(a, b)
        assert t1 == t2

    @pytest.mark.parametrize("gs_method", ["pairwise", "crystal", "allreduce"])
    def test_faults_never_corrupt_physics(self, gs_method):
        """Drops delay delivery (retries) but payloads arrive intact."""
        u_faulty, t_faulty = _run_solver(gs_method, self.PLAN)
        u_clean, t_clean = _run_solver(gs_method, None)
        for a, b in zip(u_faulty, u_clean):
            np.testing.assert_array_equal(a, b)
        # The nth=1 drop guarantees at least one retransmission, so the
        # lossy run is strictly slower on the sending rank.
        assert t_faulty[0] > t_clean[0]

    def test_retry_penalty_is_logged(self):
        def main(comm):
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            solver.run(_initial_state(), nsteps=2, dt=DT)

        rt = Runtime(nranks=2, fault_plan=self.PLAN)
        rt.run(main)
        s = rt.faults.summary()
        assert s["messages_dropped"] >= 1
        assert s["retry_penalty_seconds"] > 0.0
        assert s["crashes"] == []
        # The retry time also lands in the clock's side ledger.
        retry = sum(
            st.extra.get("retry_time", 0.0) for st in rt.clock_stats()
        )
        assert retry == pytest.approx(s["retry_penalty_seconds"])


# ---------------------------------------------------------------------------
# crash-recovery restart loop
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_recovery_is_bitwise_and_accounted(self, tmp_path):
        """The ISSUE acceptance run: crash at step 5, checkpoint every 3."""
        plan = FaultPlan.parse("crash:rank=1,step=5")
        res, rep = run_with_recovery(
            _setup(), nranks=2, nsteps=8, dt=DT,
            checkpoint_every=3, checkpoint_dir=tmp_path / "faulty",
            fault_plan=plan,
        )
        ref, ref_rep = run_with_recovery(
            _setup(), nranks=2, nsteps=8, dt=DT,
            checkpoint_every=3, checkpoint_dir=tmp_path / "clean",
        )
        for a, b in zip(res, ref):
            np.testing.assert_array_equal(a.u, b.u)

        assert rep.restarts == 1 and len(rep.attempts) == 2
        first, second = rep.attempts
        assert first.crashed and first.crash_step == 5
        assert first.restored_step == 3       # last complete checkpoint
        assert not second.crashed and second.start_step == 3
        assert rep.steps_lost == 2            # steps 3 and 4 replayed
        assert rep.lost_work_seconds > 0.0
        machine = MachineModel.default()
        assert rep.restart_overhead_seconds == machine.restart_latency
        assert rep.total_virtual_seconds > ref_rep.total_virtual_seconds
        # Fault-free runs take the same path with empty accounting.
        assert ref_rep.restarts == 0 and not ref_rep.crashes
        assert ref_rep.lost_work_seconds == 0.0

    def test_campaign_gantt_and_profile(self, tmp_path):
        from repro.analysis import fault_report, render_gantt

        plan = FaultPlan.parse("crash:rank=1,step=5")
        _, rep = run_with_recovery(
            _setup(), nranks=2, nsteps=8, dt=DT,
            checkpoint_every=3, checkpoint_dir=tmp_path,
            fault_plan=plan,
        )
        names = {iv.name for iv in rep.gantt_intervals}
        assert {"run", "run#1", "restart", "lost-work"} <= names
        chart = render_gantt(rep.gantt_intervals)
        assert "rank    0" in chart and "restart" in chart
        # The crashed attempt's FAULT_Crash pseudo-callsite survives in
        # the merged campaign profile.
        report_text = fault_report(rep.campaign_profile())
        assert "FAULT_Crash" in report_text
        assert "IO_Checkpoint" in report_text

    def test_crash_without_checkpoints_replays_from_scratch(self):
        plan = FaultPlan.parse("crash:rank=0,step=2")
        res, rep = run_with_recovery(
            _setup(), nranks=2, nsteps=4, dt=DT, fault_plan=plan,
        )
        ref, _ = run_with_recovery(_setup(), nranks=2, nsteps=4, dt=DT)
        for a, b in zip(res, ref):
            np.testing.assert_array_equal(a.u, b.u)
        assert rep.restarts == 1
        assert rep.attempts[0].restored_step == 0
        assert rep.steps_lost == 2
        # No checkpoint: the whole crashed attempt is lost work.
        assert rep.lost_work_seconds == pytest.approx(
            rep.attempts[0].makespan
        )

    def test_time_triggered_crash_recovers(self):
        # Fires at the first communication call past the deadline —
        # here the very first one the job makes.
        plan = FaultPlan.parse("crash:rank=0,time=1e-9")
        res, rep = run_with_recovery(
            _setup(), nranks=2, nsteps=3, dt=DT, fault_plan=plan,
        )
        ref, _ = run_with_recovery(_setup(), nranks=2, nsteps=3, dt=DT)
        for a, b in zip(res, ref):
            np.testing.assert_array_equal(a.u, b.u)
        assert rep.restarts == 1 and rep.crashes

    def test_max_restarts_exhausted_reraises(self, tmp_path):
        plan = FaultPlan.parse("crash:rank=1,step=1")
        with pytest.raises(RankCrashError):
            run_with_recovery(
                _setup(), nranks=2, nsteps=4, dt=DT,
                checkpoint_every=2, checkpoint_dir=tmp_path,
                fault_plan=plan, max_restarts=0,
            )

    def test_checkpoint_cadence_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_with_recovery(
                _setup(), nranks=2, nsteps=4, dt=DT, checkpoint_every=2,
            )


# ---------------------------------------------------------------------------
# abort propagation out of blocked waits
# ---------------------------------------------------------------------------


class TestAbortPropagation:
    def test_crash_mid_split_phase_unblocks_peer(self):
        """Regression: a crash between gs_op_begin and finish must not
        leave the surviving rank blocked for the watchdog to reap."""
        plan = FaultPlan(crashes=(CrashEvent(rank=1, step=0),))

        def main(comm):
            # rank 0 holds ids [1, 2], rank 1 holds [2, 3]: id 2 shared.
            gids = np.array([comm.rank + 1, comm.rank + 2])
            handle = gs_setup(gids, comm)
            handle.method = "pairwise"
            vals = np.array([1.0, 2.0]) * (comm.rank + 1)
            if comm.rank == 1:
                comm.faults.check_step_crash(comm, 0)
            exchange = gs_op_begin(handle, vals, op=SUM)
            return gs_op_finish(exchange, vals)

        rt = Runtime(nranks=2, fault_plan=plan)
        t0 = wallclock.perf_counter()
        with pytest.raises(RankCrashError):
            rt.run(main)
        # One _WAIT_POLL tick (0.1 s) plus slack — far below the
        # deadlock watchdog, which would raise DeadlockError instead.
        assert wallclock.perf_counter() - t0 < 5.0

    def test_crash_unblocks_blocking_recv(self):
        plan = FaultPlan(crashes=(CrashEvent(rank=1, step=0),))

        def main(comm):
            if comm.rank == 1:
                comm.faults.check_step_crash(comm, 0)
            return comm.recv(source=1)

        rt = Runtime(nranks=2, fault_plan=plan)
        t0 = wallclock.perf_counter()
        with pytest.raises(RankCrashError):
            rt.run(main)
        assert wallclock.perf_counter() - t0 < 5.0

    def test_crash_during_solver_exchange_reraises_crash(self):
        """The full solver path: crash surfaces as RankCrashError (with
        rank/step intact), never as a deadlock or a bare AbortError."""
        plan = FaultPlan.parse("crash:rank=1,step=1")

        def main(comm):
            solver = CMTSolver(
                comm, PART,
                config=SolverConfig(gs_method="pairwise", overlap=True),
            )
            solver.run(_initial_state(), nsteps=3, dt=DT)

        with pytest.raises(RankCrashError) as err:
            Runtime(nranks=2, fault_plan=plan).run(main)
        assert err.value.rank == 1 and err.value.step == 1

    def test_completion_wins_over_abort_consistently(self):
        """``wait_event`` abort-vs-completion ordering: a completed
        operation reports success even when the job abort is also set,
        identically on the fast path (event set before blocking) and
        the slow path (event set while polling).  A completed op is a
        committed local fact; only genuinely-blocked waits raise — the
        rule that keeps post-crash virtual clocks (and the recovery
        loop's lost-work accounting) independent of thread scheduling."""
        import threading

        from repro.mpi.errors import AbortError
        from repro.mpi.transport import BlockTracker, wait_event

        tracker = BlockTracker()

        # Fast path: both already set -> success, not AbortError.
        event, abort = threading.Event(), threading.Event()
        event.set()
        abort.set()
        wait_event(event, tracker, abort)  # must not raise
        assert tracker.blocked == 0

        # Slow path: completion lands while we poll, with the abort
        # flag already up -> still success, same rule as the fast path.
        event2, abort2 = threading.Event(), threading.Event()
        abort2.set()
        # The entry check must reject a wait that is not yet complete.
        with pytest.raises(AbortError):
            wait_event(event2, tracker, abort2)
        assert tracker.blocked == 0

        event3, abort3 = threading.Event(), threading.Event()

        def fire():
            abort3.set()  # abort first ...
            event3.set()  # ... completion after: completion still wins

        timer = threading.Timer(0.02, fire)
        timer.start()
        try:
            wait_event(event3, tracker, abort3)  # must not raise
        finally:
            timer.cancel()
        assert tracker.blocked == 0


# ---------------------------------------------------------------------------
# chaos sweep
# ---------------------------------------------------------------------------


class TestChaos:
    @pytest.fixture(scope="class")
    def clean_fields(self):
        def main(comm):
            solver = CMTSolver(
                comm, PART, config=SolverConfig(gs_method="pairwise")
            )
            return solver.run(_initial_state(), nsteps=6, dt=DT).u

        return Runtime(nranks=2).run(main)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_plan_always_terminates_and_matches(
        self, seed, tmp_path, clean_fields
    ):
        """Any seeded random plan either completes or aborts cleanly —
        never deadlocks — and recovery restores exact physics."""
        plan = FaultPlan.random(seed, nranks=2, nsteps=6)
        res, rep = run_with_recovery(
            _setup(), nranks=2, nsteps=6, dt=DT,
            checkpoint_every=2, checkpoint_dir=tmp_path,
            fault_plan=plan,
        )
        for a, b in zip(res, clean_fields):
            np.testing.assert_array_equal(a.u, b)
        # Crashes may coincide (several firing in one attempt), but a
        # plan with crashes always costs at least one restart and never
        # more than one per scheduled event.
        assert (rep.restarts >= 1) == bool(plan.crashes)
        assert rep.restarts <= len(plan.crashes)
